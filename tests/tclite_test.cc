#include <gtest/gtest.h>

#include <string>

#include "src/tclite/interp.h"
#include "src/tclite/parser.h"
#include "src/tclite/value.h"

namespace rover {
namespace {

std::string Eval(Interp* interp, const std::string& script) {
  auto r = interp->Run(script);
  EXPECT_TRUE(r.ok()) << script << " -> " << r.status();
  return r.ok() ? *r : "<error: " + r.status().ToString() + ">";
}

std::string EvalError(Interp* interp, const std::string& script) {
  auto r = interp->Run(script);
  EXPECT_FALSE(r.ok()) << script << " unexpectedly returned " << (r.ok() ? *r : "");
  return r.ok() ? "" : std::string(r.status().message());
}

// --- value helpers ---

TEST(TclValueTest, ParseInt) {
  EXPECT_EQ(TclParseInt("42"), 42);
  EXPECT_EQ(TclParseInt("-7"), -7);
  EXPECT_EQ(TclParseInt("0x10"), 16);
  EXPECT_EQ(TclParseInt(" 5 "), 5);
  EXPECT_FALSE(TclParseInt("4.2").has_value());
  EXPECT_FALSE(TclParseInt("abc").has_value());
  EXPECT_FALSE(TclParseInt("").has_value());
}

TEST(TclValueTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*TclParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*TclParseDouble("1e3"), 1000.0);
  EXPECT_FALSE(TclParseDouble("12x").has_value());
}

TEST(TclValueTest, ParseBool) {
  EXPECT_EQ(TclParseBool("true"), true);
  EXPECT_EQ(TclParseBool("OFF"), false);
  EXPECT_EQ(TclParseBool("1"), true);
  EXPECT_EQ(TclParseBool("17"), true);
  EXPECT_FALSE(TclParseBool("maybe").has_value());
}

TEST(TclValueTest, ListRoundTrip) {
  const std::vector<std::string> elems = {"a", "b c", "", "{x}", "d\"e", "f\\g"};
  auto split = TclListSplit(TclListJoin(elems));
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(*split, elems);
}

TEST(TclValueTest, ListSplitNested) {
  auto split = TclListSplit("a {b {c d}} e");
  ASSERT_TRUE(split.ok());
  ASSERT_EQ(split->size(), 3u);
  EXPECT_EQ((*split)[1], "b {c d}");
}

TEST(TclValueTest, ListSplitUnbalancedFails) {
  EXPECT_FALSE(TclListSplit("a {b").ok());
}

// --- parser ---

TEST(TclParserTest, SplitsCommandsAndWords) {
  auto script = ParseScript("set a 1\nset b 2; set c 3");
  ASSERT_TRUE(script.ok());
  ASSERT_EQ(script->commands.size(), 3u);
  EXPECT_EQ(script->commands[0].words.size(), 3u);
  EXPECT_EQ(script->commands[2].words[2].parts[0].text, "3");
}

TEST(TclParserTest, CommentsSkipped) {
  auto script = ParseScript("# a comment\nset a 1\n  # another");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->commands.size(), 1u);
}

TEST(TclParserTest, BracedWordIsLiteral) {
  auto script = ParseScript("set a {$x [cmd] \\n}");
  ASSERT_TRUE(script.ok());
  const Word& w = script->commands[0].words[2];
  ASSERT_TRUE(w.IsPureLiteral());
  EXPECT_EQ(w.parts[0].text, "$x [cmd] \\n");
}

TEST(TclParserTest, UnbalancedBraceFails) {
  EXPECT_FALSE(ParseScript("set a {oops").ok());
  EXPECT_FALSE(ParseScript("set a [oops").ok());
  EXPECT_FALSE(ParseScript("set a \"oops").ok());
}

TEST(TclParserTest, VariableForms) {
  auto script = ParseScript("puts $a${b}c$d");
  ASSERT_TRUE(script.ok());
  const Word& w = script->commands[0].words[1];
  ASSERT_EQ(w.parts.size(), 4u);
  EXPECT_EQ(w.parts[0].kind, WordPart::Kind::kVariable);
  EXPECT_EQ(w.parts[0].text, "a");
  EXPECT_EQ(w.parts[1].text, "b");
  EXPECT_EQ(w.parts[2].text, "c");
  EXPECT_EQ(w.parts[3].text, "d");
}

// --- interpreter basics ---

TEST(InterpTest, SetAndGet) {
  Interp interp;
  EXPECT_EQ(Eval(&interp, "set x 41; incr x"), "42");
  EXPECT_EQ(Eval(&interp, "set x"), "42");
}

TEST(InterpTest, UnknownCommandErrors) {
  Interp interp;
  EXPECT_NE(EvalError(&interp, "definitely_not_a_command").find("invalid command"),
            std::string::npos);
}

TEST(InterpTest, UnknownVariableErrors) {
  Interp interp;
  EXPECT_NE(EvalError(&interp, "puts $missing").find("no such variable"),
            std::string::npos);
}

TEST(InterpTest, CommandSubstitution) {
  Interp interp;
  EXPECT_EQ(Eval(&interp, "set a [expr {2 + 3}]"), "5");
  EXPECT_EQ(Eval(&interp, "set b x[expr {1+1}]y"), "x2y");
}

TEST(InterpTest, QuotedStringsSubstitute) {
  Interp interp;
  Eval(&interp, "set name world");
  EXPECT_EQ(Eval(&interp, "set msg \"hello $name\""), "hello world");
  EXPECT_EQ(Eval(&interp, "set raw {hello $name}"), "hello $name");
}

TEST(InterpTest, Escapes) {
  Interp interp;
  EXPECT_EQ(Eval(&interp, R"(set s "a\tb\nc")"), "a\tb\nc");
  EXPECT_EQ(Eval(&interp, R"(set d \$x)"), "$x");
}

TEST(InterpTest, PutsCapturedInOutput) {
  Interp interp;
  Eval(&interp, "puts hello; puts -nonewline there");
  EXPECT_EQ(interp.TakeOutput(), "hello\nthere");
  EXPECT_EQ(interp.output(), "");
}

// --- control flow ---

TEST(InterpTest, IfElse) {
  Interp interp;
  EXPECT_EQ(Eval(&interp, "if {1 < 2} {set r yes} else {set r no}"), "yes");
  EXPECT_EQ(Eval(&interp, "if {1 > 2} {set r yes} else {set r no}"), "no");
  EXPECT_EQ(Eval(&interp, "if {0} {set r a} elseif {1} {set r b} else {set r c}"), "b");
}

TEST(InterpTest, WhileLoopWithBreakContinue) {
  Interp interp;
  EXPECT_EQ(Eval(&interp, R"(
    set sum 0
    set i 0
    while {$i < 100} {
      incr i
      if {$i % 2 == 0} { continue }
      if {$i > 10} { break }
      set sum [expr {$sum + $i}]
    }
    set sum
  )"),
            "25");  // 1+3+5+7+9
}

TEST(InterpTest, ForLoop) {
  Interp interp;
  EXPECT_EQ(Eval(&interp, R"(
    set total 0
    for {set i 1} {$i <= 10} {incr i} { set total [expr {$total + $i}] }
    set total
  )"),
            "55");
}

TEST(InterpTest, ForeachSingleAndMultiVar) {
  Interp interp;
  EXPECT_EQ(Eval(&interp, R"(
    set out {}
    foreach x {a b c} { append out $x }
    set out
  )"),
            "abc");
  EXPECT_EQ(Eval(&interp, R"(
    set out {}
    foreach {k v} {one 1 two 2} { append out "$k=$v;" }
    set out
  )"),
            "one=1;two=2;");
}

TEST(InterpTest, CatchCapturesErrors) {
  Interp interp;
  EXPECT_EQ(Eval(&interp, "catch {error boom} msg"), "1");
  EXPECT_EQ(Eval(&interp, "set msg"), "boom");
  EXPECT_EQ(Eval(&interp, "catch {expr {1+1}} msg"), "0");
  EXPECT_EQ(Eval(&interp, "set msg"), "2");
}

// --- procs ---

TEST(InterpTest, ProcDefinitionAndCall) {
  Interp interp;
  Eval(&interp, "proc add {a b} { return [expr {$a + $b}] }");
  EXPECT_EQ(Eval(&interp, "add 2 40"), "42");
}

TEST(InterpTest, ProcLocalScope) {
  Interp interp;
  Eval(&interp, "set x global_value");
  Eval(&interp, "proc shadow {} { set x local; return $x }");
  EXPECT_EQ(Eval(&interp, "shadow"), "local");
  EXPECT_EQ(Eval(&interp, "set x"), "global_value");
}

TEST(InterpTest, ProcGlobalLink) {
  Interp interp;
  Eval(&interp, "set counter 0");
  Eval(&interp, "proc bump {} { global counter; incr counter }");
  Eval(&interp, "bump; bump; bump");
  EXPECT_EQ(Eval(&interp, "set counter"), "3");
}

TEST(InterpTest, ProcDefaultsAndVarargs) {
  Interp interp;
  Eval(&interp, "proc greet {name {greeting hello}} { return \"$greeting $name\" }");
  EXPECT_EQ(Eval(&interp, "greet rover"), "hello rover");
  EXPECT_EQ(Eval(&interp, "greet rover hi"), "hi rover");
  Eval(&interp, "proc count {first args} { return [llength $args] }");
  EXPECT_EQ(Eval(&interp, "count a b c d"), "3");
}

TEST(InterpTest, ProcWrongArityErrors) {
  Interp interp;
  Eval(&interp, "proc f {a b} { return $a }");
  EXPECT_NE(EvalError(&interp, "f 1").find("wrong # args"), std::string::npos);
  EXPECT_NE(EvalError(&interp, "f 1 2 3").find("wrong # args"), std::string::npos);
}

TEST(InterpTest, RecursiveProc) {
  Interp interp;
  Eval(&interp, "proc fib {n} { if {$n < 2} { return $n }; "
                "return [expr {[fib [expr {$n-1}]] + [fib [expr {$n-2}]]}] }");
  EXPECT_EQ(Eval(&interp, "fib 15"), "610");
}

// --- expr ---

TEST(ExprTest, Arithmetic) {
  Interp interp;
  EXPECT_EQ(Eval(&interp, "expr {2 + 3 * 4}"), "14");
  EXPECT_EQ(Eval(&interp, "expr {(2 + 3) * 4}"), "20");
  EXPECT_EQ(Eval(&interp, "expr {7 / 2}"), "3");
  EXPECT_EQ(Eval(&interp, "expr {7.0 / 2}"), "3.5");
  EXPECT_EQ(Eval(&interp, "expr {7 % 3}"), "1");
  EXPECT_EQ(Eval(&interp, "expr {-3 + 1}"), "-2");
}

TEST(ExprTest, Comparisons) {
  Interp interp;
  EXPECT_EQ(Eval(&interp, "expr {1 < 2}"), "1");
  EXPECT_EQ(Eval(&interp, "expr {2 <= 2}"), "1");
  EXPECT_EQ(Eval(&interp, "expr {3 == 3.0}"), "1");
  EXPECT_EQ(Eval(&interp, "expr {\"abc\" eq \"abc\"}"), "1");
  EXPECT_EQ(Eval(&interp, "expr {\"abc\" ne \"abd\"}"), "1");
  EXPECT_EQ(Eval(&interp, "expr {\"10\" == \"10.0\"}"), "1");  // numeric compare
}

TEST(ExprTest, LogicalAndTernary) {
  Interp interp;
  EXPECT_EQ(Eval(&interp, "expr {1 && 0}"), "0");
  EXPECT_EQ(Eval(&interp, "expr {1 || 0}"), "1");
  EXPECT_EQ(Eval(&interp, "expr {!3}"), "0");
  EXPECT_EQ(Eval(&interp, "expr {1 < 2 ? \"yes\" : \"no\"}"), "yes");
}

TEST(ExprTest, BitwiseAndShift) {
  Interp interp;
  EXPECT_EQ(Eval(&interp, "expr {6 & 3}"), "2");
  EXPECT_EQ(Eval(&interp, "expr {6 | 3}"), "7");
  EXPECT_EQ(Eval(&interp, "expr {6 ^ 3}"), "5");
  EXPECT_EQ(Eval(&interp, "expr {1 << 10}"), "1024");
  EXPECT_EQ(Eval(&interp, "expr {~0}"), "-1");
}

TEST(ExprTest, Functions) {
  Interp interp;
  EXPECT_EQ(Eval(&interp, "expr {abs(-5)}"), "5");
  EXPECT_EQ(Eval(&interp, "expr {int(3.9)}"), "3");
  EXPECT_EQ(Eval(&interp, "expr {round(3.5)}"), "4");
  EXPECT_EQ(Eval(&interp, "expr {min(3, 1, 2)}"), "1");
  EXPECT_EQ(Eval(&interp, "expr {max(3, 1, 2)}"), "3");
  EXPECT_EQ(Eval(&interp, "expr {sqrt(16)}"), "4.0");
  EXPECT_EQ(Eval(&interp, "expr {pow(2, 10)}"), "1024.0");
}

TEST(ExprTest, VariablesAndNestedCommands) {
  Interp interp;
  Eval(&interp, "set n 6");
  EXPECT_EQ(Eval(&interp, "expr {$n * 7}"), "42");
  EXPECT_EQ(Eval(&interp, "expr {[llength {a b c}] + 1}"), "4");
}

TEST(ExprTest, DivideByZeroErrors) {
  Interp interp;
  EXPECT_NE(EvalError(&interp, "expr {1 / 0}").find("divide by zero"),
            std::string::npos);
  EXPECT_NE(EvalError(&interp, "expr {1 % 0}").find("divide by zero"),
            std::string::npos);
}

TEST(ExprTest, DeterministicRand) {
  Interp a;
  Interp b;
  EXPECT_EQ(Eval(&a, "expr {srand(11) + rand()}"), Eval(&b, "expr {srand(11) + rand()}"));
}

// --- lists & strings ---

TEST(ListCmdTest, Basics) {
  Interp interp;
  EXPECT_EQ(Eval(&interp, "list a b {c d}"), "a b {c d}");
  EXPECT_EQ(Eval(&interp, "llength {a b {c d}}"), "3");
  EXPECT_EQ(Eval(&interp, "lindex {a b c} 1"), "b");
  EXPECT_EQ(Eval(&interp, "lindex {a b c} end"), "c");
  EXPECT_EQ(Eval(&interp, "lindex {a b c} 99"), "");
  EXPECT_EQ(Eval(&interp, "lrange {a b c d e} 1 3"), "b c d");
  EXPECT_EQ(Eval(&interp, "lrange {a b c d e} 3 end"), "d e");
  EXPECT_EQ(Eval(&interp, "lsearch {x y z} y"), "1");
  EXPECT_EQ(Eval(&interp, "lsearch {x y z} w"), "-1");
}

TEST(ListCmdTest, LappendBuildsList) {
  Interp interp;
  Eval(&interp, "lappend acc one; lappend acc {two three}");
  EXPECT_EQ(Eval(&interp, "llength $acc"), "2");
  EXPECT_EQ(Eval(&interp, "lindex $acc 1"), "two three");
}

TEST(ListCmdTest, Lsort) {
  Interp interp;
  EXPECT_EQ(Eval(&interp, "lsort {banana apple cherry}"), "apple banana cherry");
  EXPECT_EQ(Eval(&interp, "lsort -integer {10 2 33 4}"), "2 4 10 33");
  EXPECT_EQ(Eval(&interp, "lsort -integer -decreasing {10 2 33 4}"), "33 10 4 2");
}

TEST(ListCmdTest, JoinSplitConcat) {
  Interp interp;
  EXPECT_EQ(Eval(&interp, "join {a b c} -"), "a-b-c");
  EXPECT_EQ(Eval(&interp, "split a-b-c -"), "a b c");
  EXPECT_EQ(Eval(&interp, "concat {a b} {c d}"), "a b c d");
}

TEST(DictCmdTest, GetSetExistsKeys) {
  Interp interp;
  Eval(&interp, "set d [dict set {} name rover]");
  Eval(&interp, "set d [dict set $d year 1995]");
  EXPECT_EQ(Eval(&interp, "dict get $d name"), "rover");
  EXPECT_EQ(Eval(&interp, "dict get $d year"), "1995");
  EXPECT_EQ(Eval(&interp, "dict exists $d name"), "1");
  EXPECT_EQ(Eval(&interp, "dict exists $d venue"), "0");
  EXPECT_EQ(Eval(&interp, "dict keys $d"), "name year");
  EXPECT_NE(EvalError(&interp, "dict get $d venue").find("not known"),
            std::string::npos);
}

TEST(StringCmdTest, Subcommands) {
  Interp interp;
  EXPECT_EQ(Eval(&interp, "string length hello"), "5");
  EXPECT_EQ(Eval(&interp, "string toupper hello"), "HELLO");
  EXPECT_EQ(Eval(&interp, "string tolower HeLLo"), "hello");
  EXPECT_EQ(Eval(&interp, "string index hello 1"), "e");
  EXPECT_EQ(Eval(&interp, "string index hello end"), "o");
  EXPECT_EQ(Eval(&interp, "string range hello 1 3"), "ell");
  EXPECT_EQ(Eval(&interp, "string trim {  hi  }"), "hi");
  EXPECT_EQ(Eval(&interp, "string compare abc abd"), "-1");
  EXPECT_EQ(Eval(&interp, "string equal abc abc"), "1");
  EXPECT_EQ(Eval(&interp, "string first ll hello"), "2");
  EXPECT_EQ(Eval(&interp, "string repeat ab 3"), "ababab");
}

TEST(StringCmdTest, GlobMatch) {
  Interp interp;
  EXPECT_EQ(Eval(&interp, "string match {*.html} index.html"), "1");
  EXPECT_EQ(Eval(&interp, "string match {*.html} index.txt"), "0");
  EXPECT_EQ(Eval(&interp, "string match {f?o} foo"), "1");
  EXPECT_EQ(Eval(&interp, "string match {a*b*c} axxbyyc"), "1");
}

TEST(FormatCmdTest, Conversions) {
  Interp interp;
  EXPECT_EQ(Eval(&interp, "format {%d-%s} 7 seven"), "7-seven");
  EXPECT_EQ(Eval(&interp, "format {%05d} 42"), "00042");
  EXPECT_EQ(Eval(&interp, "format {%.2f} 3.14159"), "3.14");
  EXPECT_EQ(Eval(&interp, "format {%x} 255"), "ff");
  EXPECT_EQ(Eval(&interp, "format {100%%}"), "100%");
}

// --- sandbox limits ---

TEST(SandboxTest, CommandBudgetEnforced) {
  ExecLimits limits;
  limits.max_commands = 1000;
  Interp interp(limits);
  EXPECT_NE(EvalError(&interp, "while {1} { set x 1 }").find("budget"),
            std::string::npos);
}

TEST(SandboxTest, BudgetResetAllowsMoreWork) {
  ExecLimits limits;
  limits.max_commands = 500;
  Interp interp(limits);
  Eval(&interp, "for {set i 0} {$i < 50} {incr i} {}");
  interp.ResetBudget();
  Eval(&interp, "for {set i 0} {$i < 50} {incr i} {}");
}

TEST(SandboxTest, RecursionDepthEnforced) {
  ExecLimits limits;
  limits.max_depth = 20;
  Interp interp(limits);
  Eval(&interp, "proc loop {} { loop }");
  EXPECT_NE(EvalError(&interp, "loop").find("recursion"), std::string::npos);
}

TEST(SandboxTest, InfiniteRecursionInExprCaught) {
  ExecLimits limits;
  limits.max_depth = 30;
  Interp interp(limits);
  Eval(&interp, "proc f {} { expr {[f] + 1} }");
  EXPECT_FALSE(interp.Run("f").ok());
}

// --- parse cache ---

TEST(InterpTest, ParseCacheHitsOnReexecution) {
  Interp interp;
  Eval(&interp, "proc body {} { set x 1 }");
  for (int i = 0; i < 10; ++i) {
    Eval(&interp, "body");
  }
  EXPECT_GT(interp.stats().parse_cache_hits, 5u);
}

}  // namespace
}  // namespace rover

namespace rover {
namespace {

std::string Eval2(Interp* interp, const std::string& script) {
  auto r = interp->Run(script);
  EXPECT_TRUE(r.ok()) << script << " -> " << r.status();
  return r.ok() ? *r : "<error>";
}

TEST(ListCmdTest, Lreverse) {
  Interp interp;
  EXPECT_EQ(Eval2(&interp, "lreverse {a b c}"), "c b a");
  EXPECT_EQ(Eval2(&interp, "lreverse {}"), "");
}

TEST(ListCmdTest, Linsert) {
  Interp interp;
  EXPECT_EQ(Eval2(&interp, "linsert {a b c} 1 x y"), "a x y b c");
  EXPECT_EQ(Eval2(&interp, "linsert {a b c} 0 z"), "z a b c");
  EXPECT_EQ(Eval2(&interp, "linsert {a b c} end w"), "a b c w");
  EXPECT_EQ(Eval2(&interp, "linsert {a b c} 99 w"), "a b c w");  // clamped
}

TEST(ListCmdTest, Lreplace) {
  Interp interp;
  EXPECT_EQ(Eval2(&interp, "lreplace {a b c d} 1 2 X"), "a X d");
  EXPECT_EQ(Eval2(&interp, "lreplace {a b c d} 0 0"), "b c d");
  EXPECT_EQ(Eval2(&interp, "lreplace {a b c d} 2 end"), "a b");
  EXPECT_EQ(Eval2(&interp, "lreplace {a b c} 1 1 x y z"), "a x y z c");
}

TEST(SwitchCmdTest, ExactAndDefault) {
  Interp interp;
  const char* script = R"(
    proc classify {x} {
      switch $x {
        red { return warm }
        blue { return cool }
        default { return unknown }
      }
    }
  )";
  Eval2(&interp, script);
  EXPECT_EQ(Eval2(&interp, "classify red"), "warm");
  EXPECT_EQ(Eval2(&interp, "classify blue"), "cool");
  EXPECT_EQ(Eval2(&interp, "classify green"), "unknown");
}

TEST(SwitchCmdTest, GlobMode) {
  Interp interp;
  EXPECT_EQ(Eval2(&interp, "switch -glob index.html {*.html {set r page} *.gif {set r image} default {set r other}}"),
            "page");
}

TEST(SwitchCmdTest, FallThroughBodies) {
  Interp interp;
  EXPECT_EQ(Eval2(&interp, "switch b {a - b {set r ab} c {set r c}}"), "ab");
}

TEST(SwitchCmdTest, InlineClauses) {
  Interp interp;
  EXPECT_EQ(Eval2(&interp, "switch x a {set r 1} x {set r 2}"), "2");
  EXPECT_EQ(Eval2(&interp, "switch nomatch a {set r 1}"), "");
}

TEST(StringCmdTest, Map) {
  Interp interp;
  EXPECT_EQ(Eval2(&interp, "string map {a 1 b 2} abcab"), "12c12");
  EXPECT_EQ(Eval2(&interp, "string map {ab X} ababc"), "XXc");
  EXPECT_EQ(Eval2(&interp, "string map {} abc"), "abc");
}

}  // namespace
}  // namespace rover

namespace rover {
namespace {

std::string Eval3(Interp* interp, const std::string& script) {
  auto r = interp->Run(script);
  EXPECT_TRUE(r.ok()) << script << " -> " << r.status();
  return r.ok() ? *r : "<error>";
}

TEST(UpvarTest, AliasesCallerVariable) {
  Interp interp;
  Eval3(&interp, "proc bump {varName} { upvar $varName v; incr v }");
  Eval3(&interp, "set count 10; bump count; bump count");
  EXPECT_EQ(Eval3(&interp, "set count"), "12");
}

TEST(UpvarTest, HashZeroReachesGlobal) {
  Interp interp;
  Eval3(&interp, "set g 1");
  Eval3(&interp, R"(
    proc inner {} { upvar #0 g x; set x 99 }
    proc outer {} { inner }
  )");
  Eval3(&interp, "outer");
  EXPECT_EQ(Eval3(&interp, "set g"), "99");
}

TEST(UpvarTest, TwoLevelChain) {
  Interp interp;
  Eval3(&interp, R"(
    proc leaf {} { upvar 2 top t; set t deep }
    proc mid {} { leaf }
    proc root {} { set top shallow; mid; return $top }
  )");
  EXPECT_EQ(Eval3(&interp, "root"), "deep");
}

TEST(UpvarTest, LevelBeyondDepthErrors) {
  Interp interp;
  Eval3(&interp, "proc f {} { upvar 5 x y }");
  EXPECT_FALSE(interp.Run("f").ok());
}

TEST(UpvarTest, MultiplePairs) {
  Interp interp;
  Eval3(&interp, "proc swap {an bn} { upvar $an a $bn b; set t $a; set a $b; set b $t }");
  Eval3(&interp, "set x 1; set y 2; swap x y");
  EXPECT_EQ(Eval3(&interp, "set x"), "2");
  EXPECT_EQ(Eval3(&interp, "set y"), "1");
}

TEST(UplevelTest, EvaluatesInCallerScope) {
  Interp interp;
  Eval3(&interp, "proc defvar {name value} { uplevel set $name $value }");
  Eval3(&interp, "proc user {} { defvar local 42; return $local }");
  EXPECT_EQ(Eval3(&interp, "user"), "42");
}

TEST(UplevelTest, HashZeroEvaluatesGlobally) {
  Interp interp;
  Eval3(&interp, "proc deep {} { uplevel #0 {set gvar made-global} }");
  Eval3(&interp, "proc mid {} { deep }");
  Eval3(&interp, "mid");
  EXPECT_EQ(Eval3(&interp, "set gvar"), "made-global");
}

TEST(UplevelTest, ControlConstructBuiltFromUplevel) {
  // The classic use: building new control structures. A `repeat` command
  // whose body runs in the caller's scope.
  Interp interp;
  Eval3(&interp, R"(
    proc repeat {n body} {
      for {set i 0} {$i < $n} {incr i} { uplevel $body }
    }
  )");
  Eval3(&interp, "set total 0; repeat 5 { incr total 2 }");
  EXPECT_EQ(Eval3(&interp, "set total"), "10");
}

TEST(UplevelTest, FramesRestoredAfterError) {
  Interp interp;
  Eval3(&interp, "proc f {} { set mine 7; catch { uplevel {error boom} }; return $mine }");
  EXPECT_EQ(Eval3(&interp, "f"), "7");
}

}  // namespace
}  // namespace rover
