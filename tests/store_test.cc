#include <gtest/gtest.h>

#include <string>

#include "src/store/conflict.h"
#include "src/store/object_store.h"
#include "src/tclite/value.h"

namespace rover {
namespace {

// --- resolvers ---

TEST(ConflictTest, LastWriterWins) {
  auto merged = LastWriterWinsResolve("old", "server", "client");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, "client");
}

TEST(ConflictTest, SetMergeUnionsAdditions) {
  // Ancestor {a b}; server added c; client added d.
  auto merged = SetMergeResolve("a b", "a b c", "a b d");
  ASSERT_TRUE(merged.ok());
  auto elems = TclListSplit(*merged);
  ASSERT_TRUE(elems.ok());
  EXPECT_EQ(*elems, (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(ConflictTest, SetMergeHonoursClientRemovals) {
  // Client removed b; server added c.
  auto merged = SetMergeResolve("a b", "a b c", "a");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, "a c");
}

TEST(ConflictTest, SetMergeBothSidesRemoveAndAdd) {
  // Server removed a & added x; client removed b & added y.
  auto merged = SetMergeResolve("a b", "b x", "a y");
  ASSERT_TRUE(merged.ok());
  auto elems = TclListSplit(*merged);
  std::set<std::string> set(elems->begin(), elems->end());
  EXPECT_EQ(set, (std::set<std::string>{"x", "y"}));
}

TEST(ConflictTest, SetMergeRejectsNonList) {
  EXPECT_FALSE(SetMergeResolve("{unbalanced", "a", "b").ok());
}

TEST(ConflictTest, CalendarMergeNonOverlapping) {
  // Server booked 10am, client booked 11am.
  auto merged =
      CalendarMergeResolve("", "10am {staff mtg}", "11am {dentist}");
  ASSERT_TRUE(merged.ok());
  auto elems = TclListSplit(*merged);
  ASSERT_EQ(elems->size(), 4u);
  EXPECT_EQ((*elems)[0], "10am");
  EXPECT_EQ((*elems)[2], "11am");
}

TEST(ConflictTest, CalendarMergeClientDeletion) {
  // Ancestor has 9am+10am; client deleted 9am; server untouched.
  auto merged = CalendarMergeResolve("9am a 10am b", "9am a 10am b", "10am b");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, "10am b");
}

TEST(ConflictTest, CalendarMergeSameSlotConflicts) {
  auto merged = CalendarMergeResolve("", "10am {staff mtg}", "10am {dentist}");
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kConflict);
  EXPECT_NE(merged.status().message().find("10am"), std::string::npos);
}

TEST(ConflictTest, CalendarMergeSameSlotSameValueOk) {
  auto merged = CalendarMergeResolve("", "10am mtg", "10am mtg");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, "10am mtg");
}

TEST(ConflictTest, TextMergeDisjointEdits) {
  const std::string ancestor = "alpha\nbravo\ncharlie\ndelta\n";
  const std::string committed = "alpha\nBRAVO\ncharlie\ndelta\n";   // server edit
  const std::string proposed = "alpha\nbravo\ncharlie\nDELTA\n";    // client edit
  auto merged = TextMergeResolve(ancestor, committed, proposed);
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(*merged, "alpha\nBRAVO\ncharlie\nDELTA\n");
}

TEST(ConflictTest, TextMergeAppendsFromBothSides) {
  const std::string ancestor = "line1\n";
  auto merged = TextMergeResolve(ancestor, "line0\nline1\n", "line1\nline2\n");
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(*merged, "line0\nline1\nline2\n");
}

TEST(ConflictTest, TextMergeIdenticalInsertionsCollapse) {
  const std::string ancestor = "a\nz\n";
  auto merged = TextMergeResolve(ancestor, "a\nm\nz\n", "a\nm\nz\n");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, "a\nm\nz\n");
}

TEST(ConflictTest, TextMergeOverlappingEditsConflict) {
  const std::string ancestor = "a\nmiddle\nz\n";
  auto merged = TextMergeResolve(ancestor, "a\nSERVER\nz\n", "a\nCLIENT\nz\n");
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kConflict);
}

TEST(ConflictTest, TextMergeOneSideUnchanged) {
  const std::string ancestor = "a\nb\n";
  auto merged = TextMergeResolve(ancestor, ancestor, "a\nb\nc\n");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, "a\nb\nc\n");
}

TEST(ConflictTest, RegistryRoutesByType) {
  ConflictResolverRegistry registry;
  EXPECT_TRUE(registry.Has("lww"));
  EXPECT_TRUE(registry.Has("set"));
  EXPECT_TRUE(registry.Has("calendar"));
  EXPECT_TRUE(registry.Has("text"));
  EXPECT_FALSE(registry.Has("custom"));

  auto merged = registry.Resolve("lww", "a", "b", "c");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, "c");

  // Unknown type -> unresolvable conflict.
  EXPECT_EQ(registry.Resolve("custom", "a", "b", "c").status().code(),
            StatusCode::kConflict);

  // Custom registration.
  registry.Register("custom", [](const std::string&, const std::string& committed,
                                 const std::string& proposed) -> Result<std::string> {
    return committed + "+" + proposed;
  });
  EXPECT_EQ(*registry.Resolve("custom", "a", "b", "c"), "b+c");
}

// --- object store ---

RdoDescriptor Desc(const std::string& name, const std::string& type,
                   const std::string& data) {
  RdoDescriptor d;
  d.name = name;
  d.type = type;
  d.data = data;
  d.code = "proc noop {} { return 0 }";
  return d;
}

TEST(ObjectStoreTest, CreateGetVersion) {
  ObjectStore store;
  ASSERT_TRUE(store.Create(Desc("x", "lww", "v0")).ok());
  EXPECT_TRUE(store.Exists("x"));
  EXPECT_EQ(*store.VersionOf("x"), 1u);
  EXPECT_EQ(store.Get("x")->data, "v0");
  EXPECT_EQ(store.Create(Desc("x", "lww", "again")).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(store.Get("missing").status().code(), StatusCode::kNotFound);
}

TEST(ObjectStoreTest, PutBumpsVersion) {
  ObjectStore store;
  ASSERT_TRUE(store.Create(Desc("x", "lww", "v0")).ok());
  EXPECT_EQ(*store.Put(Desc("x", "lww", "v1")), 2u);
  EXPECT_EQ(*store.Put(Desc("x", "lww", "v2")), 3u);
  EXPECT_EQ(store.Get("x")->data, "v2");
}

TEST(ObjectStoreTest, FastPathExport) {
  ObjectStore store;
  ConflictResolverRegistry resolvers;
  ASSERT_TRUE(store.Create(Desc("x", "lww", "v0")).ok());
  auto outcome = store.ApplyExport(Desc("x", "lww", "client"), 1, resolvers);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->new_version, 2u);
  EXPECT_FALSE(outcome->was_conflict);
  EXPECT_EQ(store.stats().fast_path_commits, 1u);
}

TEST(ObjectStoreTest, ConflictResolvedByType) {
  ObjectStore store;
  ConflictResolverRegistry resolvers;
  ASSERT_TRUE(store.Create(Desc("roster", "set", "a b")).ok());
  // Another client committed version 2 (added c).
  ASSERT_TRUE(store.ApplyExport(Desc("roster", "set", "a b c"), 1, resolvers).ok());
  // Our client diverged from version 1 (added d).
  auto outcome = store.ApplyExport(Desc("roster", "set", "a b d"), 1, resolvers);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->was_conflict);
  EXPECT_EQ(outcome->new_version, 3u);
  auto elems = TclListSplit(store.Get("roster")->data);
  EXPECT_EQ(*elems, (std::vector<std::string>{"a", "b", "c", "d"}));
  EXPECT_EQ(store.stats().resolved_conflicts, 1u);
}

TEST(ObjectStoreTest, UnresolvableConflictReported) {
  ObjectStore store;
  ConflictResolverRegistry resolvers;
  ASSERT_TRUE(store.Create(Desc("cal", "calendar", "")).ok());
  ASSERT_TRUE(store.ApplyExport(Desc("cal", "calendar", "10am staff"), 1, resolvers).ok());
  auto outcome = store.ApplyExport(Desc("cal", "calendar", "10am dentist"), 1, resolvers);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kConflict);
  // Committed state unchanged.
  EXPECT_EQ(store.Get("cal")->data, "10am staff");
  EXPECT_EQ(store.stats().unresolved_conflicts, 1u);
}

TEST(ObjectStoreTest, StaleBaseVersionRejected) {
  ObjectStore store;
  ConflictResolverRegistry resolvers;
  ASSERT_TRUE(store.Create(Desc("x", "lww", "v0")).ok());
  auto outcome = store.ApplyExport(Desc("x", "lww", "new"), 99, resolvers);
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(ObjectStoreTest, ListWithPrefix) {
  ObjectStore store;
  ASSERT_TRUE(store.Create(Desc("mail/inbox/1", "lww", "")).ok());
  ASSERT_TRUE(store.Create(Desc("mail/inbox/2", "lww", "")).ok());
  ASSERT_TRUE(store.Create(Desc("cal/2026", "lww", "")).ok());
  EXPECT_EQ(store.List("mail/").size(), 2u);
  EXPECT_EQ(store.List("cal/").size(), 1u);
  EXPECT_EQ(store.List().size(), 3u);
  EXPECT_EQ(store.List("nope/").size(), 0u);
}

TEST(ObjectStoreTest, RemoveObject) {
  ObjectStore store;
  ASSERT_TRUE(store.Create(Desc("x", "lww", "")).ok());
  ASSERT_TRUE(store.Remove("x").ok());
  EXPECT_FALSE(store.Exists("x"));
  EXPECT_EQ(store.Remove("x").code(), StatusCode::kNotFound);
}

TEST(ObjectStoreTest, HistoryLimitFallsBackToEmptyAncestor) {
  ObjectStore store(/*history_limit=*/2);
  ConflictResolverRegistry resolvers;
  ASSERT_TRUE(store.Create(Desc("s", "set", "a")).ok());
  // Burn through history so version-1 ancestor is gone.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Put(Desc("s", "set", "a b")).ok());
  }
  // Export based on long-gone version 1: with an empty ancestor, the set
  // resolver treats everything in the proposal as additions.
  auto outcome = store.ApplyExport(Desc("s", "set", "a c"), 1, resolvers);
  ASSERT_TRUE(outcome.ok());
  auto elems = TclListSplit(store.Get("s")->data);
  std::set<std::string> set(elems->begin(), elems->end());
  EXPECT_EQ(set, (std::set<std::string>{"a", "b", "c"}));
}

}  // namespace
}  // namespace rover
