#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/qrpc/marshal.h"
#include "src/qrpc/promise.h"
#include "src/qrpc/qrpc.h"
#include "src/qrpc/stable_log.h"
#include "src/sim/network.h"
#include "src/transport/smtp.h"
#include "src/util/rng.h"

namespace rover {
namespace {

TEST(PromiseTest, SetAndCallbacks) {
  Promise<int> p;
  EXPECT_FALSE(p.ready());
  int seen = 0;
  p.OnReady([&](const int& v) { seen = v; });
  p.Set(42);
  EXPECT_TRUE(p.ready());
  EXPECT_EQ(p.value(), 42);
  EXPECT_EQ(seen, 42);
  // Late callback fires immediately.
  int late = 0;
  p.OnReady([&](const int& v) { late = v; });
  EXPECT_EQ(late, 42);
}

TEST(PromiseTest, CopiesShareState) {
  Promise<std::string> a;
  Promise<std::string> b = a;
  a.Set("hello");
  EXPECT_TRUE(b.ready());
  EXPECT_EQ(b.value(), "hello");
}

TEST(PromiseTest, WaitDrivesLoop) {
  EventLoop loop;
  Promise<int> p;
  loop.ScheduleAfter(Duration::Seconds(5), [&] { p.Set(7); });
  EXPECT_TRUE(p.Wait(&loop));
  EXPECT_EQ(p.value(), 7);
  EXPECT_EQ(loop.now().seconds(), 5.0);
}

TEST(PromiseTest, WaitReturnsFalseIfLoopRunsDry) {
  EventLoop loop;
  Promise<int> p;
  EXPECT_FALSE(p.Wait(&loop));
}

TEST(MarshalTest, RpcValueRoundTrip) {
  WireWriter w;
  EncodeRpcValue(int64_t{-42}, &w);
  EncodeRpcValue(2.718, &w);
  EncodeRpcValue(std::string("rover"), &w);
  EncodeRpcValue(Bytes{9, 8, 7}, &w);
  WireReader r(w.data());
  EXPECT_EQ(*RpcValueAsInt(*DecodeRpcValue(&r)), -42);
  EXPECT_DOUBLE_EQ(*RpcValueAsDouble(*DecodeRpcValue(&r)), 2.718);
  EXPECT_EQ(*RpcValueAsString(*DecodeRpcValue(&r)), "rover");
  EXPECT_EQ(*RpcValueAsBytes(*DecodeRpcValue(&r)), (Bytes{9, 8, 7}));
}

TEST(MarshalTest, TypeMismatchErrors) {
  RpcValue v = std::string("text");
  EXPECT_FALSE(RpcValueAsInt(v).ok());
  EXPECT_FALSE(RpcValueAsBytes(v).ok());
  // Int coerces to double but not vice versa.
  EXPECT_TRUE(RpcValueAsDouble(RpcValue(int64_t{3})).ok());
  EXPECT_FALSE(RpcValueAsInt(RpcValue(3.0)).ok());
}

TEST(MarshalTest, RequestBodyRoundTrip) {
  RpcRequestBody body;
  body.method = "calendar.book";
  body.args = {int64_t{5}, std::string("room 5"), 1.5};
  auto decoded = RpcRequestBody::Decode(body.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->method, "calendar.book");
  ASSERT_EQ(decoded->args.size(), 3u);
  EXPECT_EQ(std::get<int64_t>(decoded->args[0]), 5);
}

TEST(MarshalTest, ResponseBodyRoundTrip) {
  RpcResponseBody body;
  body.code = StatusCode::kConflict;
  body.error_message = "slot taken";
  body.result = std::string("partial");
  auto decoded = RpcResponseBody::Decode(body.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, StatusCode::kConflict);
  EXPECT_EQ(decoded->ToStatus().message(), "slot taken");
}

class StableLogTest : public ::testing::Test {
 protected:
  EventLoop loop_;
};

TEST_F(StableLogTest, AppendFlushTruncate) {
  StableLog log(&loop_);
  const uint64_t id1 = log.Append(Bytes{1});
  const uint64_t id2 = log.Append(Bytes{2});
  EXPECT_FALSE(log.FullyDurable());
  bool flushed = false;
  log.Flush([&] { flushed = true; });
  loop_.Run();
  EXPECT_TRUE(flushed);
  EXPECT_TRUE(log.FullyDurable());
  EXPECT_EQ(log.DurableRecords().size(), 2u);
  log.Truncate(id1);
  EXPECT_EQ(log.RecordCount(), 1u);
  EXPECT_EQ(log.FrontRecordId(), id2);
}

TEST_F(StableLogTest, FlushCostModelCharged) {
  StableLogCostModel model;
  model.flush_base = Duration::Millis(10);
  model.write_bytes_per_sec = 1e6;
  StableLog log(&loop_);
  StableLog paid(&loop_, model);
  paid.Append(Bytes(10000, 1));
  TimePoint done;
  paid.Flush([&] { done = loop_.now(); });
  loop_.Run();
  // 10ms base + ~10KB/1MBps = ~10ms.
  EXPECT_NEAR(done.seconds(), 0.020, 0.001);
}

TEST_F(StableLogTest, CrashDropsVolatileRecords) {
  StableLog log(&loop_);
  log.Append(Bytes{1});
  log.Flush(nullptr);
  loop_.Run();
  log.Append(Bytes{2});  // never flushed
  log.SimulateCrash();
  EXPECT_EQ(log.Recover(), 1u);
  ASSERT_EQ(log.DurableRecords().size(), 1u);
  EXPECT_EQ(log.DurableRecords()[0].data, Bytes{1});
}

TEST_F(StableLogTest, TornWriteDetectedByCrc) {
  StableLog log(&loop_);
  log.Append(Bytes{1, 2, 3});
  log.Append(Bytes{4, 5, 6});
  log.Flush(nullptr);
  loop_.Run();
  log.SimulateCrash(/*tear_last_record=*/true);
  EXPECT_EQ(log.Recover(), 1u);  // torn record dropped
  EXPECT_EQ(log.DurableRecords()[0].data, (Bytes{1, 2, 3}));
}

TEST_F(StableLogTest, SerialFlushesQueue) {
  StableLogCostModel model;
  model.flush_base = Duration::Millis(5);
  StableLog log(&loop_, model);
  std::vector<double> completions;
  log.Append(Bytes(100, 1));
  log.Flush([&] { completions.push_back(loop_.now().seconds()); });
  log.Append(Bytes(100, 2));
  log.Flush([&] { completions.push_back(loop_.now().seconds()); });
  loop_.Run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_GT(completions[1], completions[0]);
}

// --- end-to-end QRPC fixture ---

class QrpcTest : public ::testing::Test {
 protected:
  QrpcTest() : net_(&loop_) {}

  void Wire(LinkProfile profile, std::unique_ptr<ConnectivitySchedule> schedule = nullptr) {
    net_.Connect("mobile", "server", std::move(profile), std::move(schedule));
    client_tm_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("mobile"));
    server_tm_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("server"));
    log_ = std::make_unique<StableLog>(&loop_);
    client_ = std::make_unique<QrpcClient>(&loop_, client_tm_.get(), log_.get());
    server_ = std::make_unique<QrpcServer>(&loop_, server_tm_.get());
    server_->RegisterHandler(
        "echo", [](const RpcRequestBody& req, const Message&, QrpcServer::Responder respond) {
          RpcResponseBody body;
          body.result = req.args.empty() ? RpcValue(std::string("")) : req.args[0];
          respond(body);
        });
    server_->RegisterHandler(
        "count", [this](const RpcRequestBody&, const Message&, QrpcServer::Responder respond) {
          ++executions_;
          RpcResponseBody body;
          body.result = int64_t{executions_};
          respond(body);
        });
  }

  EventLoop loop_;
  Network net_;
  std::unique_ptr<TransportManager> client_tm_;
  std::unique_ptr<TransportManager> server_tm_;
  std::unique_ptr<StableLog> log_;
  std::unique_ptr<QrpcClient> client_;
  std::unique_ptr<QrpcServer> server_;
  int64_t executions_ = 0;
};

TEST_F(QrpcTest, EchoRoundTrip) {
  Wire(LinkProfile::Ethernet10());
  QrpcCall call = client_->Call("server", "echo", {std::string("hello")});
  ASSERT_TRUE(call.result.Wait(&loop_));
  EXPECT_TRUE(call.result.value().status.ok());
  EXPECT_EQ(std::get<std::string>(call.result.value().value), "hello");
  EXPECT_TRUE(call.committed.ready());
  EXPECT_LE(call.committed.value(), call.result.value().completed_at);
}

TEST_F(QrpcTest, CommitPrecedesTransmission) {
  Wire(LinkProfile::Ethernet10());
  QrpcCall call = client_->Call("server", "echo", {std::string("x")});
  ASSERT_TRUE(call.committed.Wait(&loop_));
  // Commit time includes at least the log flush base cost (8ms default).
  EXPECT_GE(call.committed.value().seconds(), 0.008);
}

TEST_F(QrpcTest, UnloggedCallSkipsFlush) {
  Wire(LinkProfile::Ethernet10());
  QrpcCallOptions opts;
  opts.log_request = false;
  QrpcCall call = client_->Call("server", "echo", {std::string("x")}, opts);
  ASSERT_TRUE(call.committed.Wait(&loop_));
  EXPECT_LT(call.committed.value().seconds(), 0.001);
  ASSERT_TRUE(call.result.Wait(&loop_));
  EXPECT_EQ(log_->RecordCount(), 0u);
}

TEST_F(QrpcTest, NonBlockingWhileDisconnected) {
  // Link comes up at t=120s.
  Wire(LinkProfile::Cslip144(),
       std::make_unique<PeriodicConnectivity>(Duration::Seconds(1e6), Duration::Zero(),
                                              TimePoint::Epoch() + Duration::Seconds(120)));
  QrpcCall call = client_->Call("server", "echo", {std::string("queued")});
  // The call commits locally long before any connectivity.
  ASSERT_TRUE(call.committed.Wait(&loop_));
  EXPECT_LT(call.committed.value().seconds(), 1.0);
  EXPECT_FALSE(call.result.ready());
  EXPECT_EQ(client_->PendingCount(), 1u);
  ASSERT_TRUE(call.result.Wait(&loop_));
  EXPECT_GT(call.result.value().completed_at.seconds(), 120.0);
  EXPECT_TRUE(call.result.value().status.ok());
}

TEST_F(QrpcTest, ManyCallsPreserveOrderAndAllComplete) {
  Wire(LinkProfile::Cslip144());
  std::vector<QrpcCall> calls;
  for (int i = 0; i < 20; ++i) {
    calls.push_back(client_->Call("server", "echo", {int64_t{i}}));
  }
  loop_.Run();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(calls[static_cast<size_t>(i)].result.ready());
    EXPECT_EQ(std::get<int64_t>(calls[static_cast<size_t>(i)].result.value().value), i);
  }
  EXPECT_EQ(client_->PendingCount(), 0u);
}

TEST_F(QrpcTest, LogTruncatedAfterResponses) {
  Wire(LinkProfile::Ethernet10());
  for (int i = 0; i < 5; ++i) {
    client_->Call("server", "echo", {int64_t{i}});
  }
  loop_.Run();
  EXPECT_EQ(log_->RecordCount(), 0u);  // all answered and truncated
}

TEST_F(QrpcTest, UnknownMethodReturnsUnimplemented) {
  Wire(LinkProfile::Ethernet10());
  QrpcCall call = client_->Call("server", "no.such.method", {});
  ASSERT_TRUE(call.result.Wait(&loop_));
  EXPECT_EQ(call.result.value().status.code(), StatusCode::kUnimplemented);
  EXPECT_EQ(server_->stats().unknown_methods, 1u);
}

TEST_F(QrpcTest, AtMostOnceUnderDuplicateDelivery) {
  Wire(LinkProfile::Ethernet10());
  QrpcCall call = client_->Call("server", "count", {});
  ASSERT_TRUE(call.result.Wait(&loop_));
  EXPECT_EQ(executions_, 1);

  // Simulate a retransmitted request (client crash-recovery resend): a
  // fresh message with the same rpc id from the same host.
  Message dup;
  dup.header.message_id = call.rpc_id;
  dup.header.type = MessageType::kRequest;
  dup.header.dst = "server";
  RpcRequestBody body;
  body.method = "count";
  dup.payload = body.Encode();
  client_tm_->Send(std::move(dup));
  loop_.Run();
  EXPECT_EQ(executions_, 1);  // not re-executed
  EXPECT_EQ(server_->stats().duplicates, 1u);
}

TEST_F(QrpcTest, CrashRecoveryResendsUnansweredRequests) {
  // Disconnected until t=500s: requests commit to the log but get no
  // response before the crash.
  Wire(LinkProfile::WaveLan2(),
       std::make_unique<PeriodicConnectivity>(Duration::Seconds(1e6), Duration::Zero(),
                                              TimePoint::Epoch() + Duration::Seconds(500)));
  client_->Call("server", "count", {});
  client_->Call("server", "count", {});
  loop_.RunUntil(TimePoint::Epoch() + Duration::Seconds(10));
  EXPECT_EQ(log_->RecordCount(), 2u);

  // Crash the client host: rebuild transport + engine over the recovered log.
  log_->SimulateCrash();
  ASSERT_EQ(log_->Recover(), 2u);
  client_tm_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("mobile"));
  client_ = std::make_unique<QrpcClient>(&loop_, client_tm_.get(), log_.get());
  EXPECT_EQ(client_->RecoverFromLog(), 2u);
  loop_.Run();
  EXPECT_EQ(executions_, 2);  // both executed exactly once
  EXPECT_EQ(client_->PendingCount(), 0u);
  EXPECT_EQ(log_->RecordCount(), 0u);
}

TEST_F(QrpcTest, RecoveryAfterPartialResponsesOnlyResendsUnanswered) {
  Wire(LinkProfile::Ethernet10());
  QrpcCall done = client_->Call("server", "count", {});
  ASSERT_TRUE(done.result.Wait(&loop_));
  EXPECT_EQ(executions_, 1);

  // Second call committed but the link dies before transmission completes:
  // emulate by tearing the network down via a fresh disconnected topology.
  // Simplest deterministic variant: crash right after commit.
  QrpcCall pending = client_->Call("server", "count", {});
  ASSERT_TRUE(pending.committed.Wait(&loop_));
  log_->SimulateCrash();
  log_->Recover();
  client_tm_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("mobile"));
  client_ = std::make_unique<QrpcClient>(&loop_, client_tm_.get(), log_.get());
  const size_t resent = client_->RecoverFromLog();
  EXPECT_EQ(resent, 1u);
  loop_.Run();
  EXPECT_EQ(executions_, 2);  // duplicate suppression would keep it at 2 anyway
}

TEST_F(QrpcTest, PriorityReachesWire) {
  Wire(LinkProfile::Cslip144(),
       std::make_unique<PeriodicConnectivity>(Duration::Seconds(1e6), Duration::Zero(),
                                              TimePoint::Epoch() + Duration::Seconds(30)));
  QrpcCallOptions bg;
  bg.priority = Priority::kBackground;
  QrpcCallOptions fg;
  fg.priority = Priority::kForeground;
  QrpcCall slow = client_->Call("server", "count", {}, bg);
  QrpcCall fast = client_->Call("server", "count", {}, fg);
  loop_.Run();
  ASSERT_TRUE(slow.result.ready());
  ASSERT_TRUE(fast.result.ready());
  // Foreground was issued second but executes first.
  EXPECT_EQ(std::get<int64_t>(fast.result.value().value), 1);
  EXPECT_EQ(std::get<int64_t>(slow.result.value().value), 2);
}

TEST_F(QrpcTest, ViaRelayDeliversWithoutDirectLink) {
  // No direct mobile<->server link at all.
  net_.Connect("mobile", "relay", LinkProfile::WaveLan2());
  net_.Connect("relay", "server", LinkProfile::Ethernet10());
  client_tm_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("mobile"));
  server_tm_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("server"));
  auto relay_tm = std::make_unique<TransportManager>(&loop_, net_.FindHost("relay"));
  SmtpRelay relay(&loop_, relay_tm.get());
  log_ = std::make_unique<StableLog>(&loop_);
  client_ = std::make_unique<QrpcClient>(&loop_, client_tm_.get(), log_.get());
  server_ = std::make_unique<QrpcServer>(&loop_, server_tm_.get());
  server_->RegisterHandler(
      "echo", [](const RpcRequestBody& req, const Message&, QrpcServer::Responder respond) {
        RpcResponseBody body;
        body.result = req.args[0];
        respond(body);
      });

  QrpcCallOptions opts;
  opts.via_relay = true;
  opts.relay_host = "relay";
  QrpcCall call = client_->Call("server", "echo", {std::string("mail")}, opts);
  loop_.Run();
  // The response cannot return: the server has no route to "mobile"
  // except... it does not. So only check the request executed? No --
  // the server schedules the response to "mobile"; with no link it queues
  // forever. The request itself must have been dispatched:
  EXPECT_TRUE(call.committed.ready());
  EXPECT_EQ(server_->stats().requests, 1u);
}

TEST_F(QrpcTest, DeadlineFiresWhileDisconnected) {
  // Link only comes up at t=120s; the 30s deadline fires first.
  Wire(LinkProfile::WaveLan2(),
       std::make_unique<PeriodicConnectivity>(Duration::Seconds(1e6), Duration::Zero(),
                                              TimePoint::Epoch() + Duration::Seconds(120)));
  QrpcCallOptions opts;
  opts.deadline = Duration::Seconds(30);
  QrpcCall call = client_->Call("server", "count", {}, opts);
  ASSERT_TRUE(call.result.Wait(&loop_));
  EXPECT_EQ(call.result.value().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NEAR(call.result.value().completed_at.seconds(), 30.0, 0.001);
  EXPECT_TRUE(call.committed.ready());  // waiters on commit must not hang
  // The durable record is withdrawn and the queued message cancelled: the
  // expired request is neither resent after a crash nor transmitted when
  // the link finally comes up.
  EXPECT_EQ(log_->RecordCount(), 0u);
  EXPECT_EQ(client_tm_->scheduler()->TotalQueueDepth(), 0u);
  EXPECT_EQ(client_->PendingCount(), 0u);
  EXPECT_EQ(client_->stats().deadline_exceeded, 1u);
  loop_.Run();  // link comes up at t=120s; nothing is sent
  EXPECT_EQ(executions_, 0);
  EXPECT_EQ(server_->stats().requests, 0u);
}

TEST_F(QrpcTest, DeadlineDoesNotFireWhenResponseArrivesFirst) {
  Wire(LinkProfile::Ethernet10());
  QrpcCallOptions opts;
  opts.deadline = Duration::Seconds(10);
  QrpcCall call = client_->Call("server", "echo", {std::string("fast")}, opts);
  ASSERT_TRUE(call.result.Wait(&loop_));
  EXPECT_TRUE(call.result.value().status.ok());
  loop_.Run();  // the armed deadline event was cancelled; nothing fires
  EXPECT_EQ(client_->stats().deadline_exceeded, 0u);
  EXPECT_EQ(client_->stats().completed, 1u);
}

TEST_F(QrpcTest, LateResponseAfterDeadlineIsIgnored) {
  // CSLIP is slow enough that the request is on the wire (past the point of
  // cancellation) when a 50ms deadline fires: the server still executes,
  // but the late response finds no outstanding call and is dropped.
  Wire(LinkProfile::Cslip144());
  QrpcCallOptions opts;
  opts.deadline = Duration::Millis(50);
  QrpcCall call = client_->Call("server", "count", {}, opts);
  ASSERT_TRUE(call.result.Wait(&loop_));
  EXPECT_EQ(call.result.value().status.code(), StatusCode::kDeadlineExceeded);
  loop_.Run();
  EXPECT_EQ(executions_, 1);  // best-effort: it did run at the server
  EXPECT_EQ(client_->PendingCount(), 0u);
  EXPECT_EQ(client_->stats().completed, 0u);
}

TEST_F(QrpcTest, EpochObserverFiresOnServerEpochBump) {
  Wire(LinkProfile::Ethernet10());
  std::vector<std::pair<std::string, uint64_t>> observed;
  client_->SetEpochObserver([&](const std::string& server, uint64_t epoch) {
    observed.push_back({server, epoch});
  });

  // First contact records the epoch silently.
  QrpcCall first = client_->Call("server", "echo", {std::string("a")});
  ASSERT_TRUE(first.result.Wait(&loop_));
  EXPECT_EQ(first.result.value().server_epoch, 1u);
  EXPECT_EQ(client_->LastSeenEpoch("server"), 1u);
  EXPECT_TRUE(observed.empty());

  // The server "restarts": its epoch bumps, and the next response reveals it.
  server_->set_epoch(2);
  QrpcCall second = client_->Call("server", "echo", {std::string("b")});
  ASSERT_TRUE(second.result.Wait(&loop_));
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0].first, "server");
  EXPECT_EQ(observed[0].second, 2u);
  EXPECT_EQ(client_->LastSeenEpoch("server"), 2u);

  // Same epoch again: no further notification.
  QrpcCall third = client_->Call("server", "echo", {std::string("c")});
  ASSERT_TRUE(third.result.Wait(&loop_));
  EXPECT_EQ(observed.size(), 1u);
}

TEST_F(QrpcTest, ServerDispatchCostDelaysResponse) {
  QrpcServerOptions sopts;
  sopts.dispatch_cost = Duration::Millis(100);
  Wire(LinkProfile::Ethernet10());
  server_ = std::make_unique<QrpcServer>(&loop_, server_tm_.get(), sopts);
  server_->RegisterHandler(
      "noop", [](const RpcRequestBody&, const Message&, QrpcServer::Responder respond) {
        respond(RpcResponseBody{});
      });
  QrpcCall call = client_->Call("server", "noop", {});
  ASSERT_TRUE(call.result.Wait(&loop_));
  EXPECT_GE(call.result.value().completed_at.seconds(), 0.100);
}

}  // namespace
}  // namespace rover

namespace rover {
namespace {

TEST(StableLogGroupCommitTest, BurstCoalescesIntoFewWrites) {
  EventLoop loop;
  StableLogCostModel model;
  model.group_commit = true;
  StableLog log(&loop, model);
  int completed = 0;
  for (int i = 0; i < 16; ++i) {
    log.Append(Bytes(64, static_cast<uint8_t>(i)));
    log.Flush([&] { ++completed; });
  }
  loop.Run();
  EXPECT_EQ(completed, 16);
  EXPECT_TRUE(log.FullyDurable());
  // First flush starts immediately; everything else joins the second write.
  EXPECT_LE(log.stats().flushes, 2u);
}

TEST(StableLogGroupCommitTest, RecordsAppendedDuringWriteJoinNextWrite) {
  EventLoop loop;
  StableLogCostModel model;
  model.group_commit = true;
  model.flush_base = Duration::Millis(10);
  StableLog log(&loop, model);

  log.Append(Bytes{1});
  bool first_done = false;
  log.Flush([&] { first_done = true; });
  // While the first write is in flight, append + flush another record.
  loop.ScheduleAfter(Duration::Millis(5), [&] {
    log.Append(Bytes{2});
    log.Flush(nullptr);
  });
  loop.Run();
  EXPECT_TRUE(first_done);
  EXPECT_TRUE(log.FullyDurable());
  EXPECT_EQ(log.stats().flushes, 2u);
}

TEST(StableLogGroupCommitTest, SerialModeWritesPerFlush) {
  EventLoop loop;
  StableLogCostModel model;
  model.group_commit = false;  // opt out of the (default-on) group commit
  StableLog log(&loop, model);
  for (int i = 0; i < 8; ++i) {
    log.Append(Bytes{static_cast<uint8_t>(i)});
    log.Flush(nullptr);
  }
  loop.Run();
  EXPECT_EQ(log.stats().flushes, 8u);
}

TEST(StableLogGroupCommitTest, GroupCommitFasterThanSerialForBursts) {
  EventLoop serial_loop;
  StableLogCostModel serial_model;
  serial_model.group_commit = false;
  StableLog serial(&serial_loop, serial_model);
  for (int i = 0; i < 10; ++i) {
    serial.Append(Bytes(32, 0));
    serial.Flush(nullptr);
  }
  serial_loop.Run();

  EventLoop group_loop;
  StableLogCostModel model;
  model.group_commit = true;
  StableLog grouped(&group_loop, model);
  for (int i = 0; i < 10; ++i) {
    grouped.Append(Bytes(32, 0));
    grouped.Flush(nullptr);
  }
  group_loop.Run();

  EXPECT_LT(group_loop.now().seconds(), serial_loop.now().seconds() / 3);
}

// --- Operation coalescing: a supersedable call withdraws its queued
// --- predecessor (scheduler queue AND stable log) and chains its result.

TEST_F(QrpcTest, SupersededCallCoalescesWhileQueued) {
  // Link comes up at t=120s: both calls queue disconnected.
  Wire(LinkProfile::Cslip144(),
       std::make_unique<PeriodicConnectivity>(Duration::Seconds(1e6), Duration::Zero(),
                                              TimePoint::Epoch() + Duration::Seconds(120)));
  QrpcCallOptions opts;
  opts.supersede_key = "obj";
  QrpcCall a = client_->Call("server", "echo", {std::string("old")}, opts);
  QrpcCall b = client_->Call("server", "echo", {std::string("new")}, opts);
  loop_.RunUntil(TimePoint::Epoch() + Duration::Seconds(10));
  // The predecessor was withdrawn: gone from the engine and the log.
  EXPECT_EQ(client_->PendingCount(), 1u);
  EXPECT_EQ(log_->RecordCount(), 1u);
  EXPECT_EQ(client_->stats().coalesced, 1u);
  EXPECT_FALSE(a.result.ready());

  loop_.Run();
  ASSERT_TRUE(a.result.ready());
  ASSERT_TRUE(b.result.ready());
  // Both promises resolve (exactly once -- Promise::Set asserts otherwise)
  // with the successor's result.
  EXPECT_TRUE(a.result.value().status.ok());
  EXPECT_EQ(std::get<std::string>(a.result.value().value), "new");
  EXPECT_EQ(std::get<std::string>(b.result.value().value), "new");
  EXPECT_EQ(client_->PendingCount(), 0u);
}

TEST_F(QrpcTest, TransmittedCallIsNotCoalesced) {
  // On CSLIP the request spends tens of ms on the wire; by t=40ms the first
  // call has been dispatched and is transmitting, so it must run to
  // completion -- coalescing never drops an op the server might execute.
  Wire(LinkProfile::Cslip144());
  QrpcCallOptions opts;
  opts.supersede_key = "obj";
  QrpcCall a = client_->Call("server", "echo", {std::string("old")}, opts);
  QrpcCall b;
  loop_.ScheduleAfter(Duration::Millis(40), [&] {
    b = client_->Call("server", "echo", {std::string("new")}, opts);
  });
  loop_.Run();
  EXPECT_EQ(client_->stats().coalesced, 0u);
  ASSERT_TRUE(a.result.ready());
  ASSERT_TRUE(b.result.ready());
  EXPECT_EQ(std::get<std::string>(a.result.value().value), "old");
  EXPECT_EQ(std::get<std::string>(b.result.value().value), "new");
}

TEST_F(QrpcTest, DistinctSupersedeKeysDoNotCoalesce) {
  Wire(LinkProfile::Cslip144(),
       std::make_unique<PeriodicConnectivity>(Duration::Seconds(1e6), Duration::Zero(),
                                              TimePoint::Epoch() + Duration::Seconds(60)));
  QrpcCallOptions a_opts;
  a_opts.supersede_key = "obj-a";
  QrpcCallOptions b_opts;
  b_opts.supersede_key = "obj-b";
  QrpcCall a = client_->Call("server", "echo", {std::string("a")}, a_opts);
  QrpcCall b = client_->Call("server", "echo", {std::string("b")}, b_opts);
  loop_.Run();
  EXPECT_EQ(client_->stats().coalesced, 0u);
  EXPECT_EQ(std::get<std::string>(a.result.value().value), "a");
  EXPECT_EQ(std::get<std::string>(b.result.value().value), "b");
}

TEST_F(QrpcTest, CoalescingSurvivesCrashRecovery) {
  // Coalesce while disconnected, then crash: only the successor's record is
  // in the log, and recovery re-issues exactly that one.
  Wire(LinkProfile::WaveLan2(),
       std::make_unique<PeriodicConnectivity>(Duration::Seconds(1e6), Duration::Zero(),
                                              TimePoint::Epoch() + Duration::Seconds(500)));
  QrpcCallOptions opts;
  opts.supersede_key = "obj";
  client_->Call("server", "count", {}, opts);
  client_->Call("server", "count", {}, opts);
  loop_.RunUntil(TimePoint::Epoch() + Duration::Seconds(10));
  EXPECT_EQ(log_->RecordCount(), 1u);

  log_->SimulateCrash();
  ASSERT_EQ(log_->Recover(), 1u);
  client_tm_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("mobile"));
  client_ = std::make_unique<QrpcClient>(&loop_, client_tm_.get(), log_.get());
  EXPECT_EQ(client_->RecoverFromLog(), 1u);
  loop_.Run();
  EXPECT_EQ(executions_, 1);  // the withdrawn predecessor never executes
  EXPECT_EQ(client_->PendingCount(), 0u);
}

TEST_F(QrpcTest, CrashBetweenCoalesceAndSuccessorFlushResendsPredecessor) {
  // The predecessor commits (durably flushed, committed ack delivered) and
  // sits queued on the disconnected link. A successor then coalesces it,
  // and the client crashes before the successor's own record reaches the
  // disk. The predecessor's record must still be in the log -- withdrawing
  // it before the successor is durable would silently lose an operation
  // whose durability was already acknowledged -- so recovery conservatively
  // resends the predecessor and it executes exactly once.
  Wire(LinkProfile::WaveLan2(),
       std::make_unique<PeriodicConnectivity>(Duration::Seconds(1e6), Duration::Zero(),
                                              TimePoint::Epoch() + Duration::Seconds(500)));
  QrpcCallOptions opts;
  opts.supersede_key = "obj";
  QrpcCall a = client_->Call("server", "count", {}, opts);
  loop_.RunUntil(TimePoint::Epoch() + Duration::Seconds(5));
  ASSERT_TRUE(a.committed.ready());  // durability acknowledged
  ASSERT_EQ(log_->RecordCount(), 1u);

  client_->Call("server", "count", {}, opts);
  EXPECT_EQ(client_->stats().coalesced, 1u);
  // Crash immediately: the successor's record is appended but not flushed,
  // so it is lost with the volatile tail -- the predecessor's durable
  // record must be what survives.
  log_->SimulateCrash();
  ASSERT_EQ(log_->Recover(), 1u);
  client_tm_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("mobile"));
  client_ = std::make_unique<QrpcClient>(&loop_, client_tm_.get(), log_.get());
  EXPECT_EQ(client_->RecoverFromLog(), 1u);
  loop_.Run();
  EXPECT_EQ(executions_, 1);  // the acknowledged operation is not lost
  EXPECT_EQ(client_->PendingCount(), 0u);
}

// --- Stable-log compression ---

TEST(StableLogCompressionTest, CompressedRecordsRoundTripAndRecover) {
  EventLoop loop;
  StableLogCostModel model;
  model.compress_log = true;
  StableLog log(&loop, model);
  const Bytes payload(4096, 7);  // highly compressible
  log.Append(payload);
  log.Flush(nullptr);
  loop.Run();

  EXPECT_EQ(log.stats().records_compressed, 1u);
  EXPECT_LT(log.stats().stored_bytes_appended, log.stats().raw_bytes_appended);
  std::vector<StableLog::Record> records = log.DurableRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].compressed);
  EXPECT_LT(records[0].data.size(), payload.size());
  EXPECT_EQ(*log.RecordPayload(records[0]), payload);

  // Crash + recover: the CRC covers the stored (compressed) form, and the
  // payload still decompresses to the original.
  log.SimulateCrash();
  ASSERT_EQ(log.Recover(), 1u);
  std::vector<StableLog::Record> recovered = log.DurableRecords();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(*log.RecordPayload(recovered[0]), payload);
}

TEST(StableLogCompressionTest, IncompressibleRecordStoredRaw) {
  EventLoop loop;
  StableLogCostModel model;
  model.compress_log = true;
  StableLog log(&loop, model);
  Rng rng(77);
  Bytes payload(512);
  for (uint8_t& b : payload) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  log.Append(payload);
  log.Flush(nullptr);
  loop.Run();
  std::vector<StableLog::Record> records = log.DurableRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].compressed);  // compression would have expanded it
  EXPECT_EQ(records[0].data, payload);
  EXPECT_EQ(*log.RecordPayload(records[0]), payload);
  EXPECT_EQ(log.stats().records_compressed, 0u);
}

}  // namespace
}  // namespace rover

// --- Promise hygiene: every issued call resolves its result promise
// --- exactly once, whatever ends it -- response, deadline, cancel, shed,
// --- admission rejection, or coalescing -- and a crash in the middle
// --- neither drops a durable call nor resurrects a withdrawn one.

namespace rover {
namespace {

// A call plus a count of how often its result promise fired. Promise::Set
// already asserts on a second Set; the counter additionally catches a
// path that never resolves at all.
struct TrackedCall {
  const char* label = "";
  QrpcCall call;
  int resolutions = 0;
};

TEST_F(QrpcTest, ResolutionMatrixEveryPathResolvesExactlyOnce) {
  // Link up only at t=300s: every call below queues disconnected, so the
  // shed/deadline/cancel/coalesce paths race nothing on the wire.
  Wire(LinkProfile::WaveLan2(),
       std::make_unique<PeriodicConnectivity>(Duration::Seconds(1e6), Duration::Zero(),
                                              TimePoint::Epoch() + Duration::Seconds(300)));
  QrpcClientOptions copts;
  copts.max_outstanding_calls = 5;
  client_ = std::make_unique<QrpcClient>(&loop_, client_tm_.get(), log_.get(), copts);

  std::vector<std::shared_ptr<TrackedCall>> calls;
  auto issue = [&](const char* label, QrpcCallOptions opts = {}) {
    auto t = std::make_shared<TrackedCall>();
    t->label = label;
    t->call = client_->Call("server", "count", {}, opts);
    t->call.result.OnReady([t](const QrpcResult&) { ++t->resolutions; });
    calls.push_back(t);
    return t;
  };

  QrpcCallOptions supersede;
  supersede.supersede_key = "obj";
  auto pred = issue("coalesced-predecessor", supersede);
  auto succ = issue("coalescing-successor", supersede);
  EXPECT_EQ(client_->stats().coalesced, 1u);

  QrpcCallOptions with_deadline;
  with_deadline.deadline = Duration::Seconds(30);
  auto dead = issue("deadline-expired", with_deadline);

  auto canc = issue("cancelled");
  EXPECT_TRUE(client_->Cancel(canc->call.rpc_id));

  QrpcCallOptions background;
  background.priority = Priority::kBackground;
  auto victim = issue("shed-victim", background);
  auto kept1 = issue("kept-1");
  auto kept2 = issue("kept-2");
  // Outstanding is now at the bound of 5 (succ, dead, victim, kept1,
  // kept2): admitting one more foreground call sheds the background
  // victim; the background call after that finds nothing sheddable left
  // and is refused at Call().
  auto kept3 = issue("overflow-foreground");
  EXPECT_EQ(client_->stats().background_shed, 1u);
  auto rejected = issue("admission-rejected", background);
  EXPECT_EQ(client_->stats().admission_rejected, 1u);

  loop_.RunUntil(TimePoint::Epoch() + Duration::Seconds(60));  // deadline fired at 30s
  EXPECT_EQ(client_->stats().deadline_exceeded, 1u);
  EXPECT_EQ(client_->stats().cancelled, 1u);

  // Terminal paths resolved exactly once, with their own status.
  EXPECT_EQ(canc->resolutions, 1);
  EXPECT_EQ(canc->call.result.value().status.code(), StatusCode::kCancelled);
  EXPECT_EQ(dead->resolutions, 1);
  EXPECT_EQ(dead->call.result.value().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(victim->resolutions, 1);
  EXPECT_EQ(victim->call.result.value().status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(rejected->resolutions, 1);
  EXPECT_EQ(rejected->call.result.value().status.code(), StatusCode::kResourceExhausted);
  // The survivors wait for connectivity; nobody resolved them early, but
  // every one of them has its durability commit acknowledged.
  for (const auto& t : {pred, succ, kept1, kept2, kept3}) {
    EXPECT_EQ(t->resolutions, 0) << t->label;
    EXPECT_TRUE(t->call.committed.ready()) << t->label;
  }
  // The log holds exactly the four live requests (succ subsumed pred's
  // record once its own flush completed); everything withdrawn stays gone.
  EXPECT_EQ(log_->RecordCount(), 4u);
  EXPECT_EQ(client_->PendingCount(), 4u);

  // Crash before the link ever came up. The four durable records -- and
  // only those -- are re-issued by the next incarnation; the withdrawn
  // deadline/cancel/shed records must not resurrect.
  log_->SimulateCrash();
  ASSERT_EQ(log_->Recover(), 4u);
  client_tm_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("mobile"));
  client_ = std::make_unique<QrpcClient>(&loop_, client_tm_.get(), log_.get(), copts);
  EXPECT_EQ(client_->RecoverFromLog(), 4u);
  loop_.Run();

  EXPECT_EQ(executions_, 4);  // succ, kept1, kept2, kept3: exactly once each
  EXPECT_EQ(server_->stats().duplicates, 0u);
  EXPECT_EQ(client_->PendingCount(), 0u);
  EXPECT_EQ(log_->RecordCount(), 0u);
  // Promises owned by the dead incarnation stay unresolved -- recovery
  // answers the log, not process state that did not survive.
  for (const auto& t : {pred, succ, kept1, kept2, kept3}) {
    EXPECT_EQ(t->resolutions, 0) << t->label;
  }
}

TEST_F(QrpcTest, DeadlineOnCoalescedPredecessorIsDisarmed) {
  // The predecessor carries a 30s deadline and is coalesced immediately.
  // Its deadline event dies with the coalesce: the chained promise must
  // resolve exactly once with the successor's (much later) result, not a
  // second time when the stale deadline would have fired.
  Wire(LinkProfile::WaveLan2(),
       std::make_unique<PeriodicConnectivity>(Duration::Seconds(1e6), Duration::Zero(),
                                              TimePoint::Epoch() + Duration::Seconds(300)));
  QrpcCallOptions pred_opts;
  pred_opts.supersede_key = "obj";
  pred_opts.deadline = Duration::Seconds(30);
  QrpcCall pred = client_->Call("server", "count", {}, pred_opts);
  QrpcCallOptions succ_opts;
  succ_opts.supersede_key = "obj";
  QrpcCall succ = client_->Call("server", "count", {}, succ_opts);
  EXPECT_EQ(client_->stats().coalesced, 1u);

  loop_.RunUntil(TimePoint::Epoch() + Duration::Seconds(60));
  EXPECT_FALSE(pred.result.ready());  // the disarmed deadline never fired
  EXPECT_EQ(client_->stats().deadline_exceeded, 0u);

  loop_.Run();
  ASSERT_TRUE(pred.result.ready());
  ASSERT_TRUE(succ.result.ready());
  EXPECT_TRUE(pred.result.value().status.ok());
  EXPECT_EQ(std::get<int64_t>(pred.result.value().value),
            std::get<int64_t>(succ.result.value().value));
  EXPECT_EQ(executions_, 1);  // the pair collapsed to one server execution
  EXPECT_EQ(client_->PendingCount(), 0u);
}

TEST_F(QrpcTest, CancelOfCoalescedChainResolvesPredecessorOnce) {
  Wire(LinkProfile::WaveLan2(),
       std::make_unique<PeriodicConnectivity>(Duration::Seconds(1e6), Duration::Zero(),
                                              TimePoint::Epoch() + Duration::Seconds(300)));
  QrpcCallOptions opts;
  opts.supersede_key = "obj";
  QrpcCall pred = client_->Call("server", "count", {}, opts);
  QrpcCall succ = client_->Call("server", "count", {}, opts);
  EXPECT_EQ(client_->stats().coalesced, 1u);

  // The predecessor already left the engine: it has no independent call to
  // cancel any more, so Cancel must say so rather than touch the chain.
  EXPECT_FALSE(client_->Cancel(pred.rpc_id));
  // Cancelling the successor ends the whole chain: both promises resolve
  // (exactly once each) with CANCELLED, and nothing survives in the log to
  // resurrect either operation after a crash.
  EXPECT_TRUE(client_->Cancel(succ.rpc_id));
  loop_.RunUntil(TimePoint::Epoch() + Duration::Seconds(1));
  ASSERT_TRUE(pred.result.ready());
  ASSERT_TRUE(succ.result.ready());
  EXPECT_EQ(pred.result.value().status.code(), StatusCode::kCancelled);
  EXPECT_EQ(succ.result.value().status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(pred.committed.ready());
  EXPECT_EQ(log_->RecordCount(), 0u);

  loop_.Run();  // link comes up at t=300s; nothing is transmitted
  EXPECT_EQ(executions_, 0);
  EXPECT_EQ(server_->stats().requests, 0u);
  EXPECT_EQ(client_->PendingCount(), 0u);
}

}  // namespace
}  // namespace rover
