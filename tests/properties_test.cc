// Property-style tests: parameterized sweeps asserting invariants under
// randomized (but seeded, deterministic) workloads -- reliability of QRPC
// under loss and flapping links, exactly-once execution, resolver algebra,
// interpreter-vs-C++ expression equivalence, cache bounds, and
// multi-client convergence.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/toolkit.h"
#include "src/store/conflict.h"
#include "src/util/crc32.h"
#include "src/util/delta.h"
#include "src/tclite/interp.h"
#include "src/tclite/value.h"

namespace rover {
namespace {

// --- QRPC reliability: every call completes exactly once, whatever the
// --- network does.

struct NetworkChaos {
  uint64_t seed;
  double loss_prob;
  double mean_up_s;
  double mean_down_s;
};

class QrpcReliabilityTest : public ::testing::TestWithParam<NetworkChaos> {};

TEST_P(QrpcReliabilityTest, AllCallsCompleteExactlyOnce) {
  const NetworkChaos chaos = GetParam();
  Testbed bed;
  std::map<int64_t, int> executions;
  bed.server()->qrpc()->RegisterHandler(
      "record",
      [&](const RpcRequestBody& req, const Message&, QrpcServer::Responder respond) {
        const int64_t id = std::get<int64_t>(req.args[0]);
        ++executions[id];
        RpcResponseBody body;
        body.result = id;
        respond(body);
      });

  LinkProfile profile = LinkProfile::WaveLan2();
  profile.loss_prob = chaos.loss_prob;
  Rng rng(chaos.seed);
  auto schedule = MakeRandomConnectivity(&rng, Duration::Seconds(chaos.mean_up_s),
                                         Duration::Seconds(chaos.mean_down_s),
                                         Duration::Seconds(36000));
  RoverClientNode* client = bed.AddClient("mobile", profile, std::move(schedule));

  constexpr int kCalls = 30;
  std::vector<QrpcCall> calls;
  Rng issue_rng(chaos.seed + 1);
  for (int i = 0; i < kCalls; ++i) {
    calls.push_back(client->qrpc()->Call("server", "record", {int64_t{i}}));
    bed.loop()->RunFor(Duration::Seconds(issue_rng.NextExponential(5.0)));
  }
  bed.loop()->set_event_limit(5'000'000);
  bed.Run();

  for (int i = 0; i < kCalls; ++i) {
    ASSERT_TRUE(calls[static_cast<size_t>(i)].result.ready())
        << "call " << i << " never completed (seed " << chaos.seed << ")";
    const QrpcResult& r = calls[static_cast<size_t>(i)].result.value();
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_EQ(std::get<int64_t>(r.value), i);
    EXPECT_EQ(executions[i], 1) << "call " << i << " executed " << executions[i]
                                << " times";
  }
  EXPECT_EQ(client->qrpc()->PendingCount(), 0u);
  EXPECT_EQ(client->qrpc()->LogDepth(), 0u);  // everything answered + truncated
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, QrpcReliabilityTest,
    ::testing::Values(NetworkChaos{1, 0.0, 30, 10}, NetworkChaos{2, 0.2, 30, 10},
                      NetworkChaos{3, 0.0, 2, 8}, NetworkChaos{4, 0.3, 5, 20},
                      NetworkChaos{5, 0.5, 60, 5}, NetworkChaos{6, 0.1, 1, 1},
                      NetworkChaos{7, 0.4, 10, 60}));

// --- set-merge resolver algebra ---

class SetMergeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SetMergeTest, MergePreservesClientIntent) {
  Rng rng(GetParam());
  // Build an ancestor set, then independent server and client edits.
  std::vector<std::string> ancestor;
  for (int i = 0; i < 12; ++i) {
    ancestor.push_back("item" + std::to_string(i));
  }
  auto edit = [&rng](std::vector<std::string> base, const std::string& tag) {
    std::vector<std::string> out;
    std::vector<std::string> removed;
    for (auto& e : base) {
      if (rng.NextBool(0.25)) {
        removed.push_back(e);
      } else {
        out.push_back(e);
      }
    }
    std::vector<std::string> added;
    const int n_add = static_cast<int>(rng.NextBelow(4));
    for (int i = 0; i < n_add; ++i) {
      added.push_back(tag + std::to_string(i));
      out.push_back(added.back());
    }
    return std::make_tuple(out, added, removed);
  };
  auto [server_set, server_added, server_removed] = edit(ancestor, "srv");
  auto [client_set, client_added, client_removed] = edit(ancestor, "cli");

  auto merged = SetMergeResolve(TclListJoin(ancestor), TclListJoin(server_set),
                                TclListJoin(client_set));
  ASSERT_TRUE(merged.ok());
  auto elems = TclListSplit(*merged);
  ASSERT_TRUE(elems.ok());
  const std::set<std::string> result(elems->begin(), elems->end());

  // Everything either side added is present.
  for (const auto& e : server_added) {
    EXPECT_TRUE(result.count(e)) << e;
  }
  for (const auto& e : client_added) {
    EXPECT_TRUE(result.count(e)) << e;
  }
  // Everything the client removed is absent (client removals win over the
  // server's retained copy), and elements neither side touched survive.
  for (const auto& e : client_removed) {
    EXPECT_FALSE(result.count(e)) << e;
  }
  const std::set<std::string> server_removed_set(server_removed.begin(),
                                                 server_removed.end());
  const std::set<std::string> client_removed_set(client_removed.begin(),
                                                 client_removed.end());
  for (const auto& e : ancestor) {
    if (server_removed_set.count(e) == 0 && client_removed_set.count(e) == 0) {
      EXPECT_TRUE(result.count(e)) << e;
    }
  }
  // No duplicates.
  EXPECT_EQ(result.size(), elems->size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetMergeTest, ::testing::Range(uint64_t{1}, uint64_t{13}));

// --- calendar resolver properties ---

class CalendarMergeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CalendarMergeTest, DisjointUpdatesAlwaysMergeSymmetrically) {
  Rng rng(GetParam());
  std::vector<std::string> base_kv;
  for (int i = 0; i < 6; ++i) {
    base_kv.push_back("slot" + std::to_string(i));
    base_kv.push_back("base" + std::to_string(i));
  }
  const std::string ancestor = TclListJoin(base_kv);
  // Side A edits even slots; side B edits odd slots: never overlapping.
  auto edit = [&](int parity, const char* tag) {
    std::vector<std::string> kv = base_kv;
    for (size_t i = 0; i + 1 < kv.size(); i += 2) {
      if ((static_cast<int>(i / 2) % 2) == parity && rng.NextBool(0.7)) {
        kv[i + 1] = std::string(tag) + std::to_string(i);
      }
    }
    return TclListJoin(kv);
  };
  const std::string a = edit(0, "A");
  const std::string b = edit(1, "B");

  auto ab = CalendarMergeResolve(ancestor, a, b);
  auto ba = CalendarMergeResolve(ancestor, b, a);
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  // Merging is symmetric for disjoint edits.
  auto to_map = [](const std::string& s) {
    auto kv = *TclListSplit(s);
    std::map<std::string, std::string> m;
    for (size_t i = 0; i + 1 < kv.size(); i += 2) {
      m[kv[i]] = kv[i + 1];
    }
    return m;
  };
  EXPECT_EQ(to_map(*ab), to_map(*ba));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalendarMergeTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

// --- text merge properties ---

class TextMergeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TextMergeTest, OneSidedEditsMergeToThatSide) {
  Rng rng(GetParam());
  std::string ancestor;
  for (int i = 0; i < 20; ++i) {
    ancestor += "line " + std::to_string(i) + "\n";
  }
  // Random one-sided edit: delete some lines, insert some lines.
  std::vector<std::string> lines;
  std::string cur;
  for (char c : ancestor) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  std::string edited;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (rng.NextBool(0.2)) {
      continue;  // delete
    }
    edited += lines[i] + "\n";
    if (rng.NextBool(0.15)) {
      edited += "inserted " + std::to_string(i) + "\n";
    }
  }
  // Ancestor unchanged on one side: merge equals the edited side.
  auto m1 = TextMergeResolve(ancestor, ancestor, edited);
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(*m1, edited);
  auto m2 = TextMergeResolve(ancestor, edited, ancestor);
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(*m2, edited);
  // Identical edits on both sides collapse.
  auto m3 = TextMergeResolve(ancestor, edited, edited);
  ASSERT_TRUE(m3.ok());
  EXPECT_EQ(*m3, edited);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextMergeTest, ::testing::Range(uint64_t{1}, uint64_t{11}));

// --- interpreter arithmetic equivalence ---

class ExprEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

// Builds a random integer expression tree, evaluating it in C++ alongside.
std::string BuildExpr(Rng* rng, int depth, int64_t* value) {
  if (depth == 0 || rng->NextBool(0.3)) {
    const int64_t v = rng->NextInRange(-50, 50);
    *value = v;
    // Negative literals are parenthesized to avoid `--` sequences.
    return v < 0 ? "(" + std::to_string(v) + ")" : std::to_string(v);
  }
  int64_t lhs = 0;
  int64_t rhs = 0;
  const std::string left = BuildExpr(rng, depth - 1, &lhs);
  const std::string right = BuildExpr(rng, depth - 1, &rhs);
  switch (rng->NextBelow(4)) {
    case 0:
      *value = lhs + rhs;
      return "(" + left + " + " + right + ")";
    case 1:
      *value = lhs - rhs;
      return "(" + left + " - " + right + ")";
    case 2:
      *value = lhs * rhs;
      return "(" + left + " * " + right + ")";
    default:
      if (rhs == 0) {
        *value = lhs + rhs;
        return "(" + left + " + " + right + ")";
      }
      *value = lhs / rhs;
      return "(" + left + " / " + right + ")";
  }
}

TEST_P(ExprEquivalenceTest, RandomIntExpressionsMatchCpp) {
  Rng rng(GetParam());
  Interp interp;
  for (int i = 0; i < 50; ++i) {
    int64_t expected = 0;
    const std::string expr = BuildExpr(&rng, 4, &expected);
    auto result = interp.Run("expr {" + expr + "}");
    ASSERT_TRUE(result.ok()) << expr << ": " << result.status();
    EXPECT_EQ(*result, std::to_string(expected)) << expr;
    interp.ResetBudget();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprEquivalenceTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

// --- Tcl list quoting round trip ---

class ListRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ListRoundTripTest, ArbitraryElementsSurviveJoinSplit) {
  Rng rng(GetParam());
  const std::string alphabet = "ab {}\"\\$[];\n\t";
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::string> elems;
    const size_t n = rng.NextBelow(6);
    for (size_t i = 0; i < n; ++i) {
      std::string e;
      const size_t len = rng.NextBelow(10);
      for (size_t k = 0; k < len; ++k) {
        e.push_back(alphabet[rng.NextBelow(alphabet.size())]);
      }
      elems.push_back(e);
    }
    auto split = TclListSplit(TclListJoin(elems));
    ASSERT_TRUE(split.ok()) << TclListJoin(elems);
    EXPECT_EQ(*split, elems);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ListRoundTripTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

// --- cache capacity invariant ---

class CacheBoundTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheBoundTest, RandomWorkloadRespectsCapacity) {
  Testbed bed;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(bed.server()
                    ->rover()
                    ->CreateObject(MakeRdo("o/" + std::to_string(i), "lww",
                                           "proc get {} { global state; return $state }",
                                           std::string(100 + i * 20, 'd')))
                    .ok());
  }
  ClientNodeOptions options;
  options.access.cache_capacity_bytes = 4000;
  RoverClientNode* client =
      bed.AddClient("mobile", LinkProfile::Ethernet10(), nullptr, options);
  Rng rng(GetParam());
  for (int step = 0; step < 100; ++step) {
    const std::string name = "o/" + std::to_string(rng.NextBelow(30));
    client->access()->Import(name).Wait(bed.loop());
    // Cache never exceeds capacity while nothing is pinned/tentative.
    ASSERT_LE(client->access()->CacheBytes(), 4000u);
  }
  EXPECT_GT(client->access()->stats().evictions, 0u);
  EXPECT_GT(client->access()->stats().cache_hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheBoundTest, ::testing::Range(uint64_t{1}, uint64_t{6}));

// --- multi-client convergence ---

class ConvergenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConvergenceTest, ConcurrentSetUpdatesAllReachTheServer) {
  const uint64_t seed = GetParam();
  Testbed bed;
  ASSERT_TRUE(bed.server()
                  ->rover()
                  ->CreateObject(MakeRdo(
                      "roster", "set",
                      "proc join {who} { global state; lappend state $who; return $state }",
                      ""))
                  .ok());

  constexpr int kClients = 4;
  constexpr int kItemsPerClient = 5;
  Rng rng(seed);
  std::vector<RoverClientNode*> clients;
  for (int c = 0; c < kClients; ++c) {
    auto schedule =
        MakeRandomConnectivity(&rng, Duration::Seconds(40), Duration::Seconds(20),
                               Duration::Seconds(36000));
    clients.push_back(bed.AddClient("client" + std::to_string(c),
                                    LinkProfile::WaveLan2(), std::move(schedule)));
  }
  // Each client imports, adds its items locally (whenever its link allows
  // the import to finish), and exports.
  for (int c = 0; c < kClients; ++c) {
    RoverClientNode* client = clients[static_cast<size_t>(c)];
    auto import = client->access()->Import("roster");
    import.OnReady([=, this_loop = bed.loop()](const ImportResult& r) {
      ASSERT_TRUE(r.status.ok());
      for (int i = 0; i < kItemsPerClient; ++i) {
        InvokeOptions opts;
        opts.force_site = ExecutionSite::kClient;
        client->access()->Invoke(
            "roster", "join", {"c" + std::to_string(c) + "-" + std::to_string(i)}, opts);
      }
      client->access()->Export("roster");
    });
  }
  bed.loop()->set_event_limit(5'000'000);
  bed.Run();

  auto final_set = TclListSplit(bed.server()->store()->Get("roster")->data);
  ASSERT_TRUE(final_set.ok());
  const std::set<std::string> result(final_set->begin(), final_set->end());
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kItemsPerClient; ++i) {
      EXPECT_TRUE(result.count("c" + std::to_string(c) + "-" + std::to_string(i)))
          << "missing item from client " << c << " (seed " << seed << ")";
    }
  }
  EXPECT_EQ(result.size(), static_cast<size_t>(kClients * kItemsPerClient));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergenceTest, ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace rover

namespace rover {
namespace {

// End-to-end robustness: QRPC completes exactly once even when frames are
// randomly corrupted in flight (the receiver silently drops damaged
// frames; the scheduler retransmits).
class CorruptionTest : public ::testing::TestWithParam<double> {};

TEST_P(CorruptionTest, QrpcSurvivesFrameCorruption) {
  Testbed bed;
  int executions = 0;
  bed.server()->qrpc()->RegisterHandler(
      "bump", [&](const RpcRequestBody&, const Message&, QrpcServer::Responder respond) {
        ++executions;
        respond(RpcResponseBody{});
      });
  LinkProfile profile = LinkProfile::WaveLan2();
  profile.corrupt_prob = GetParam();
  RoverClientNode* client = bed.AddClient("mobile", profile);
  std::vector<QrpcCall> calls;
  for (int i = 0; i < 10; ++i) {
    calls.push_back(client->qrpc()->Call("server", "bump", {int64_t{i}}));
  }
  bed.loop()->set_event_limit(5'000'000);
  bed.Run();
  for (auto& call : calls) {
    ASSERT_TRUE(call.result.ready());
    EXPECT_TRUE(call.result.value().status.ok());
  }
  EXPECT_EQ(executions, 10);
}

INSTANTIATE_TEST_SUITE_P(Rates, CorruptionTest, ::testing::Values(0.1, 0.3, 0.6));

}  // namespace
}  // namespace rover

namespace rover {
namespace {

// --- Delta codec: encode against an old version, apply it back, and never
// --- accept damaged input.

// Random byte string with enough repetition that matches exist.
Bytes RandomBase(Rng* rng, size_t size) {
  Bytes base(size);
  for (uint8_t& b : base) {
    b = static_cast<uint8_t>(rng->NextBelow(16) + 'a');
  }
  return base;
}

// A handful of splice edits (replace / insert / delete) of random spans.
Bytes RandomEdit(Rng* rng, const Bytes& base) {
  Bytes target = base;
  const int edits = static_cast<int>(rng->NextInRange(1, 5));
  for (int i = 0; i < edits && !target.empty(); ++i) {
    const size_t at = rng->NextBelow(target.size());
    const size_t span = rng->NextBelow(std::min<size_t>(64, target.size() - at)) + 1;
    switch (rng->NextBelow(3)) {
      case 0:  // replace
        for (size_t j = at; j < at + span; ++j) {
          target[j] = static_cast<uint8_t>(rng->NextBelow(256));
        }
        break;
      case 1:  // insert
        target.insert(target.begin() + static_cast<ptrdiff_t>(at), span,
                      static_cast<uint8_t>(rng->NextBelow(256)));
        break;
      default:  // delete
        target.erase(target.begin() + static_cast<ptrdiff_t>(at),
                     target.begin() + static_cast<ptrdiff_t>(at + span));
        break;
    }
  }
  return target;
}

class DeltaCodecTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaCodecTest, RandomEditsRoundTrip) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    const Bytes base = RandomBase(&rng, rng.NextBelow(8192) + 1);
    const Bytes target = RandomEdit(&rng, base);
    const Bytes delta = DeltaEncode(base, target);
    auto applied = DeltaApply(base, delta);
    ASSERT_TRUE(applied.ok()) << applied.status();
    EXPECT_EQ(*applied, target);
  }
  // Degenerate shapes.
  const Bytes base = RandomBase(&rng, 512);
  EXPECT_EQ(*DeltaApply(base, DeltaEncode(base, base)), base);
  EXPECT_EQ(*DeltaApply(base, DeltaEncode(base, Bytes{})), Bytes{});
  EXPECT_EQ(*DeltaApply(Bytes{}, DeltaEncode(Bytes{}, base)), base);
}

TEST_P(DeltaCodecTest, SmallEditsProduceSmallDeltas) {
  Rng rng(GetParam() + 1000);
  const Bytes base = RandomBase(&rng, 8192);
  Bytes target = base;
  // A ~32-byte edit in an 8 KiB object.
  for (size_t i = 100; i < 132; ++i) {
    target[i] = static_cast<uint8_t>(rng.NextBelow(256));
  }
  const Bytes delta = DeltaEncode(base, target);
  EXPECT_LT(delta.size(), target.size() / 4);
}

TEST_P(DeltaCodecTest, TruncatedOrCorruptDeltaNeverAppliesSilently) {
  Rng rng(GetParam() + 2000);
  const Bytes base = RandomBase(&rng, 2048);
  const Bytes target = RandomEdit(&rng, base);
  const Bytes delta = DeltaEncode(base, target);

  // Every truncation is rejected.
  for (size_t keep : {size_t{0}, size_t{1}, delta.size() / 2, delta.size() - 1}) {
    const Bytes cut(delta.begin(), delta.begin() + static_cast<ptrdiff_t>(keep));
    auto applied = DeltaApply(base, cut);
    ASSERT_FALSE(applied.ok());
    EXPECT_EQ(applied.status().code(), StatusCode::kDataLoss);
  }

  // Single-byte corruption anywhere either fails loudly or (if it hit the
  // stored base CRC) reads as a base mismatch; it never yields wrong bytes.
  for (int trial = 0; trial < 50; ++trial) {
    Bytes damaged = delta;
    damaged[rng.NextBelow(damaged.size())] ^= static_cast<uint8_t>(rng.NextBelow(255) + 1);
    auto applied = DeltaApply(base, damaged);
    if (applied.ok()) {
      EXPECT_EQ(*applied, target);  // e.g. a flipped bit inside padding-free
                                    // copy lengths that still decodes -- must
                                    // still be CRC-exact to pass
    } else {
      EXPECT_TRUE(applied.status().code() == StatusCode::kDataLoss ||
                  applied.status().code() == StatusCode::kFailedPrecondition);
    }
  }
}

TEST(DeltaCodecEdgeTest, ImplausibleTargetLengthRejectedNotThrown) {
  const Bytes base = BytesFromString("0123456789abcdef");
  // Hand-build a header claiming a ~2^63-byte target: reserve() on that
  // value would throw std::length_error/std::bad_alloc and crash the
  // client; the codec must instead return kDataLoss so the import path
  // falls back to a full fetch.
  WireWriter w;
  w.WriteFixed32(0x314c4452u);  // "RDL1"
  w.WriteFixed32(Crc32(base.data(), base.size()));
  w.WriteFixed32(0);  // target CRC, never reached
  w.WriteVarint(uint64_t{1} << 63);
  auto applied = DeltaApply(base, w.data());
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kDataLoss);
}

TEST_P(DeltaCodecTest, MismatchedBaseIsFailedPrecondition) {
  Rng rng(GetParam() + 3000);
  const Bytes base = RandomBase(&rng, 1024);
  const Bytes target = RandomEdit(&rng, base);
  const Bytes delta = DeltaEncode(base, target);
  Bytes other = base;
  other[other.size() / 2] ^= 0x01;
  auto applied = DeltaApply(other, delta);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kFailedPrecondition);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaCodecTest, ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace rover
