// SimCheck tests.
//
// Part 1 runs the seeded interleaving fuzzer over the default corpus: every
// seed's schedule must leave zero invariant violations.
// Part 2 is the checker meta-test: with the known PR-4 coalescing bug
// deliberately re-introduced (eager predecessor-record withdrawal), the
// fuzzer must catch it, the shrinker must reduce the schedule, and the
// one-line repro must round-trip and still discriminate buggy from fixed.
// Part 3 covers the repro-line format itself.
// Part 4 holds a named deterministic regression test for each latent bug
// the checker flushed out of the toolkit:
//   * compaction racing a pending response transaction (double-apply),
//   * duplicate replay from a not-yet-journaled response (acked loss),
//   * crash-recovered calls shed under queue pressure (silent durable loss).

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/check/fuzz.h"
#include "src/check/simcheck.h"
#include "src/core/toolkit.h"
#include "src/store/server_store.h"
#include "src/tclite/value.h"

namespace rover {
namespace check {
namespace {

constexpr char kCounterCode[] = R"(
proc get {} { global state; return $state }
proc add {n} { global state; set state [expr {$state + $n}]; return $state }
)";

constexpr char kJournalCode[] = R"(
proc get {} { global state; return $state }
proc add {t} { global state; lappend state $t; return $state }
)";

TimePoint At(double seconds) {
  return TimePoint::Epoch() + Duration::Seconds(seconds);
}

// Runs the loop in 1ms increments until `pred` holds or `deadline` passes.
template <typename Pred>
bool StepUntil(EventLoop* loop, TimePoint deadline, Pred pred) {
  TimePoint t = loop->now();
  while (!pred() && t < deadline) {
    t = t + Duration::Millis(1);
    loop->RunUntil(t);
  }
  return pred();
}

// --- Part 1: fuzz corpus ---------------------------------------------------

class SimCheckFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(SimCheckFuzzTest, SeededScheduleHoldsAllInvariants) {
  FuzzPlan plan = MakePlan(GetParam());
  FuzzOutcome outcome = RunPlan(plan);
  EXPECT_TRUE(outcome.ok) << FormatRepro(plan) << "\n" << outcome.report;
}

INSTANTIATE_TEST_SUITE_P(Corpus, SimCheckFuzzTest, testing::Range<uint64_t>(1, 25));

// --- Part 2: checker meta-test ---------------------------------------------

// Re-introduce the PR-4 coalescing bug (a superseded predecessor's log
// record withdrawn before the successor is durable) and demonstrate the
// whole loop: the fuzzer catches it as a durability loss, greedy shrinking
// reduces the schedule to the two-action kernel (a coalescing burst shadowed
// by a torn client crash), and the repro line replays both ways.
TEST(SimCheckMetaTest, ReintroducedCoalescingBugIsCaughtAndShrunkToOneLine) {
  FuzzRunOptions buggy;
  buggy.eager_coalesce_bug = true;

  // Seed 17's schedule lands a torn client-2 crash just after an export
  // burst -- inside the predecessor-withdrawn-but-successor-not-durable
  // window the eager withdrawal opens.
  FuzzPlan plan = MakePlan(17);
  FuzzOutcome broken = RunPlan(plan, buggy);
  ASSERT_FALSE(broken.ok) << "re-introduced coalescing bug went undetected";
  bool saw_durability_loss = false;
  for (const Violation& v : broken.violations) {
    saw_durability_loss |= v.invariant == "durability-loss";
  }
  EXPECT_TRUE(saw_durability_loss) << broken.report;

  FuzzPlan shrunk = ShrinkPlan(plan, buggy);
  EXPECT_LT(shrunk.actions.size(), plan.actions.size());
  EXPECT_LE(shrunk.actions.size(), 2u) << FormatRepro(shrunk);
  ASSERT_FALSE(RunPlan(shrunk, buggy).ok) << "shrunk plan no longer fails";

  // The minimized schedule round-trips through its one-line repro, still
  // bites with the bug in place, and passes on the fixed code.
  const std::string line = FormatRepro(shrunk);
  auto parsed = ParseRepro(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->seed, 17u);
  EXPECT_EQ(FormatRepro(*parsed), line);
  EXPECT_FALSE(RunPlan(*parsed, buggy).ok);
  FuzzOutcome fixed = RunPlan(*parsed);
  EXPECT_TRUE(fixed.ok) << fixed.report;
}

// --- Part 3: repro lines ---------------------------------------------------

TEST(SimCheckReproTest, RoundTripsEveryActionKind) {
  const std::string line =
      "SIMCHECK_REPRO seed=7 "
      "plan=client1-crash@100,client2-crash-tear@200,server-crash@300,"
      "server-crash-tear@400,corrupt-image@500,burst@600";
  auto plan = ParseRepro(line);
  ASSERT_TRUE(plan.ok()) << plan.status().message();
  EXPECT_EQ(plan->seed, 7u);
  ASSERT_EQ(plan->actions.size(), 6u);
  EXPECT_EQ(plan->actions[0].kind, FuzzActionKind::kClientCrash);
  EXPECT_EQ(plan->actions[0].target, 0);
  EXPECT_FALSE(plan->actions[0].tear);
  EXPECT_EQ(plan->actions[1].kind, FuzzActionKind::kClientCrash);
  EXPECT_EQ(plan->actions[1].target, 1);
  EXPECT_TRUE(plan->actions[1].tear);
  EXPECT_EQ(plan->actions[2].kind, FuzzActionKind::kServerCrash);
  EXPECT_TRUE(plan->actions[3].tear);
  EXPECT_EQ(plan->actions[4].kind, FuzzActionKind::kCorruptImage);
  EXPECT_EQ(plan->actions[5].kind, FuzzActionKind::kBurst);
  EXPECT_EQ(plan->actions[5].at_ms, 600u);
  EXPECT_EQ(FormatRepro(*plan), line);
}

TEST(SimCheckReproTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseRepro("").ok());
  EXPECT_FALSE(ParseRepro("no tags at all").ok());
  EXPECT_FALSE(ParseRepro("SIMCHECK_REPRO seed=5").ok());
  EXPECT_FALSE(ParseRepro("SIMCHECK_REPRO seed=x plan=burst@1").ok());
  EXPECT_FALSE(ParseRepro("SIMCHECK_REPRO seed=5 plan=").ok());
  EXPECT_FALSE(ParseRepro("SIMCHECK_REPRO seed=5 plan=burst").ok());
  EXPECT_FALSE(ParseRepro("SIMCHECK_REPRO seed=5 plan=burst@").ok());
  EXPECT_FALSE(ParseRepro("SIMCHECK_REPRO seed=5 plan=warp@100").ok());
}

// --- Part 4: regression tests for the latent-bug batch ---------------------

// Bug: RoverServer::MaybeCompact() would snapshot while another RPC's
// mutations sat in pending_ops_ (applied to the store, transaction not yet
// journaled). The snapshot persisted the mutation WITHOUT its duplicate-
// cache response; after a crash the client's resend re-executed it.
// Fixed by deferring compaction until pending_ops_ drains.
TEST(SimCheckRegressionTest, CompactionDefersWhileResponseTransactionPending) {
  Testbed::Options topts;
  topts.server.stable_store.compact_after_records = 1;  // compact eagerly
  // A long interpreted execution holds the invoke's mutations in
  // pending_ops_ for 500ms before its response transaction is journaled.
  topts.server.rover.rdo_costs.load_fixed = Duration::Millis(500);
  Testbed bed(topts);
  check::SimCheck simcheck;
  simcheck.Attach(&bed);
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("counter", "lww", kCounterCode, "0")).ok());
  RoverClientNode* a = bed.AddClient("mobile-a", LinkProfile::WaveLan2());
  RoverClientNode* b = bed.AddClient("mobile-b", LinkProfile::WaveLan2());

  // A's add applies at ~1s; its response transaction journals at ~1.5s.
  bed.loop()->ScheduleAt(At(1.0), [&] {
    InvokeOptions io;
    io.force_site = ExecutionSite::kServer;
    a->access()->Invoke("counter", "add", {"5"}, io);
  });
  // B's import lands inside that window. Its response journal flushes and
  // -- with the WAL over threshold -- asks for compaction while A's
  // mutation is pending.
  bed.loop()->ScheduleAt(At(1.1), [&] {
    ImportOptions io;
    io.allow_cached = false;
    b->access()->Import("counter", io);
  });

  bed.loop()->RunUntil(At(1.3));
  ASSERT_EQ(*bed.server()->store()->VersionOf("counter"), 2u);
  // The compaction request fired (threshold 1) but must have been deferred.
  EXPECT_EQ(bed.server()->stable_store()->stats().snapshots_written, 0u);

  // Crash before A's transaction journals: the mutation must vanish with
  // it. A pre-fix snapshot would have persisted it response-less.
  bed.server()->SimulateCrashAndRestart(false);
  EXPECT_EQ(*bed.server()->store()->VersionOf("counter"), 1u);

  // A's call is durable and unanswered; the resend executes exactly once.
  bed.loop()->RunUntil(At(2.0));
  EXPECT_EQ(a->SimulateCrashAndRestart(false), 1u);
  bed.Run();
  EXPECT_EQ(*bed.server()->store()->VersionOf("counter"), 2u);
  EXPECT_EQ(bed.server()->store()->Get("counter")->data, "5");  // not 10
  EXPECT_EQ(a->qrpc()->LogDepth(), 0u);

  simcheck.CheckQuiesced();
  EXPECT_TRUE(simcheck.ok()) << simcheck.Report() << simcheck.TraceTail(150);
}

// Bug: a duplicate arriving while the original's response journal was still
// in flight was answered from the in-memory duplicate cache. A crash could
// then forget the transaction the replayed response acknowledged -- the
// client held an answer for an operation the server lost. Fixed by dropping
// duplicates whose response is not yet durable (undurable_responses_ gate).
TEST(SimCheckRegressionTest, DuplicateBeforeResponseDurableIsDroppedNotReplayed) {
  Testbed::Options topts;
  // A disk-like journal keeps the response write in flight for 300ms.
  topts.server.stable_store.wal_costs = {Duration::Millis(300), 2e6,
                                         /*group_commit=*/true};
  Testbed bed(topts);
  check::SimCheck simcheck;
  simcheck.Attach(&bed);
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("counter", "lww", kCounterCode, "0")).ok());
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2());

  bed.loop()->ScheduleAt(At(1.0), [&] {
    InvokeOptions io;
    io.force_site = ExecutionSite::kServer;
    client->access()->Invoke("counter", "add", {"5"}, io);
  });

  // Catch the handler executed with its response journal write on the
  // device, then resend the request into that window via a client restart.
  bed.loop()->RunUntil(At(1.05));
  ASSERT_TRUE(StepUntil(bed.loop(), At(3.0), [&] {
    return *bed.server()->store()->VersionOf("counter") == 2 &&
           bed.server()->stable_store()->wal_for_test()->WriteInFlight();
  }));
  ASSERT_EQ(client->SimulateCrashAndRestart(false), 1u);
  ASSERT_TRUE(StepUntil(bed.loop(), At(3.0), [&] {
    return bed.server()->qrpc()->stats().duplicates >= 1;
  }));
  // The duplicate was dropped, not replayed: the client still waits.
  ASSERT_TRUE(bed.server()->stable_store()->wal_for_test()->WriteInFlight());
  EXPECT_EQ(client->qrpc()->PendingCount(), 1u);

  // Crash with the journal write still in flight: the transaction -- and
  // the response a pre-fix replay would already have handed out -- is lost.
  bed.server()->SimulateCrashAndRestart(false);
  EXPECT_EQ(*bed.server()->store()->VersionOf("counter"), 1u);

  // No response ever left, so the client's record is still logged; its
  // resend re-executes on the recovered server and the add lands once.
  EXPECT_EQ(client->SimulateCrashAndRestart(false), 1u);
  bed.Run();
  EXPECT_EQ(*bed.server()->store()->VersionOf("counter"), 2u);
  EXPECT_EQ(bed.server()->store()->Get("counter")->data, "5");
  EXPECT_EQ(client->qrpc()->LogDepth(), 0u);
  EXPECT_EQ(client->qrpc()->PendingCount(), 0u);

  simcheck.CheckQuiesced();
  EXPECT_TRUE(simcheck.ok()) << simcheck.Report() << simcheck.TraceTail(150);
}

// Bug: RecoverFromLog re-dispatches every durable record, and a background
// record refused by the network scheduler under queue pressure went through
// the shed path: log record withdrawn, result resolved into a synthetic
// promise nobody observes. An acknowledged-durable operation silently
// vanished. Fixed: recovered calls are exempt from shedding; a refused
// dispatch is retried after a backoff with the record kept.
TEST(SimCheckRegressionTest, RecoveredCallsRefusedByTheSchedulerRetryNotShed) {
  Testbed::Options topts;
  // Park every executed request for a long time so no response resolves or
  // truncates the log before the client restart.
  topts.server.qrpc.dispatch_cost = Duration::Seconds(30);
  Testbed bed(topts);
  check::SimCheck simcheck;
  simcheck.Attach(&bed);
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());
  ClientNodeOptions copts;
  copts.scheduler.max_queued_messages = 2;  // recovery re-enqueues 4 at once
  RoverClientNode* client =
      bed.AddClient("mobile", LinkProfile::WaveLan2(), nullptr, copts);

  // Four durable background adds, spaced out so the live queue never sees
  // more than one at a time.
  const std::vector<std::string> tokens = {"t1", "t2", "t3", "t4"};
  for (size_t i = 0; i < tokens.size(); ++i) {
    bed.loop()->ScheduleAt(At(1.0 + 0.2 * static_cast<double>(i)), [&, i] {
      InvokeOptions io;
      io.force_site = ExecutionSite::kServer;
      io.priority = Priority::kBackground;
      client->access()->Invoke("journal", "add", {tokens[i]}, io);
    });
  }
  bed.loop()->RunUntil(At(3.0));
  ASSERT_EQ(client->qrpc()->LogDepth(), 4u);

  // The restart resends all four in one burst; the two past the queue bound
  // are refused by the scheduler and must be retried, not withdrawn.
  EXPECT_EQ(client->SimulateCrashAndRestart(false), 4u);
  EXPECT_GE(client->qrpc()->stats().recovered_retries, 1u);
  EXPECT_EQ(client->qrpc()->stats().background_shed, 0u);
  EXPECT_EQ(client->qrpc()->PendingCount(), 4u);

  bed.Run();
  // Every acknowledged-durable add executed, exactly once each.
  auto entries = TclListSplit(bed.server()->store()->Get("journal")->data);
  ASSERT_TRUE(entries.ok());
  for (const std::string& token : tokens) {
    size_t copies = 0;
    for (const std::string& entry : *entries) {
      copies += entry == token ? 1 : 0;
    }
    EXPECT_EQ(copies, 1u) << token << " in [" << bed.server()->store()->Get("journal")->data
                          << "]";
  }
  EXPECT_EQ(client->qrpc()->LogDepth(), 0u);
  EXPECT_EQ(client->qrpc()->PendingCount(), 0u);

  simcheck.CheckQuiesced();
  EXPECT_TRUE(simcheck.ok()) << simcheck.Report() << simcheck.TraceTail(150);
}

}  // namespace
}  // namespace check
}  // namespace rover
