#include <gtest/gtest.h>

#include <string>

#include "src/util/buffer.h"
#include "src/util/bytes.h"
#include "src/util/compress.h"
#include "src/util/crc32.h"
#include "src/util/result.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/time.h"

namespace rover {
namespace {


TEST(BufferTest, AdoptFromRvalueBytesIsFree) {
  const uint64_t before = PayloadCopyBytes();
  Bytes raw{1, 2, 3, 4, 5};
  const uint8_t* raw_ptr = raw.data();
  Buffer buf(std::move(raw));
  EXPECT_EQ(buf.size(), 5u);
  EXPECT_EQ(buf.data(), raw_ptr);  // the vector's allocation was adopted
  EXPECT_EQ(PayloadCopyBytes(), before);
}

TEST(BufferTest, CopyFromLvalueBytesIsCharged) {
  const uint64_t before = PayloadCopyBytes();
  const Bytes raw{1, 2, 3, 4, 5};
  Buffer buf(raw);
  EXPECT_EQ(buf, raw);
  EXPECT_EQ(PayloadCopyBytes(), before + 5);
}

TEST(BufferTest, SliceAliasesStorage) {
  Buffer whole(Bytes{10, 11, 12, 13, 14, 15});
  const uint64_t before = PayloadCopyBytes();
  Buffer mid = whole.Slice(2, 3);
  EXPECT_EQ(PayloadCopyBytes(), before);  // slicing copies nothing
  EXPECT_TRUE(mid.SharesStorageWith(whole));
  EXPECT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.data(), whole.data() + 2);
  EXPECT_EQ(mid, (Bytes{12, 13, 14}));
  // Slicing a slice composes offsets.
  Buffer inner = mid.Slice(1, 1);
  EXPECT_EQ(inner, (Bytes{13}));
  EXPECT_TRUE(inner.SharesStorageWith(whole));
}

TEST(BufferTest, SliceClampsToBounds) {
  Buffer whole(Bytes{1, 2, 3, 4});
  EXPECT_EQ(whole.Slice(2, 100).size(), 2u);   // length clamped
  EXPECT_TRUE(whole.Slice(4, 1).empty());      // offset at end -> empty
  EXPECT_TRUE(whole.Slice(99, 1).empty());     // offset past end -> empty
  EXPECT_FALSE(whole.Slice(99, 1).SharesStorageWith(whole));
}

TEST(BufferTest, CopyIsRefcountNotMemcpy) {
  Buffer a(Bytes{1, 2, 3});
  const uint64_t before = PayloadCopyBytes();
  Buffer b = a;   // copy-construct: bump refcount
  Buffer c;
  c = a;          // copy-assign: bump refcount
  EXPECT_EQ(PayloadCopyBytes(), before);
  EXPECT_TRUE(b.SharesStorageWith(a));
  EXPECT_TRUE(c.SharesStorageWith(a));
}

TEST(BufferTest, MutableDataDetachesWhenShared) {
  Buffer a(Bytes{1, 2, 3, 4});
  Buffer b = a;
  b.MutableData()[0] = 99;  // copy-on-write: a must not see the mutation
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(b[0], 99);
  EXPECT_FALSE(a.SharesStorageWith(b));
}

TEST(BufferTest, MutableDataInPlaceWhenUniquelyOwned) {
  Buffer a(Bytes{1, 2, 3, 4});
  const uint8_t* before = a.data();
  const uint64_t copies = PayloadCopyBytes();
  a.MutableData()[0] = 99;
  EXPECT_EQ(a.data(), before);  // sole whole-allocation owner: no detach
  EXPECT_EQ(PayloadCopyBytes(), copies);
  EXPECT_EQ(a[0], 99);
}

TEST(BufferTest, MutableDataOnSliceDetachesEvenWhenUnique) {
  Buffer whole(Bytes{1, 2, 3, 4, 5, 6});
  Buffer tail = whole.Slice(3, 3);
  whole = Buffer();  // tail is now the sole owner, but of a partial view
  tail.MutableData()[0] = 99;
  EXPECT_EQ(tail, (Bytes{99, 5, 6}));
  EXPECT_EQ(tail.size(), 3u);
}

TEST(BufferTest, CompactDropsBackingStorage) {
  Buffer whole(Bytes(1000, 0xab));
  Buffer header = whole.Slice(0, 8);
  EXPECT_TRUE(header.SharesStorageWith(whole));  // pins all 1000 bytes
  header.Compact();
  EXPECT_FALSE(header.SharesStorageWith(whole));
  EXPECT_EQ(header, Bytes(8, 0xab));
  // Already-minimal buffers are untouched.
  const uint8_t* before = header.data();
  header.Compact();
  EXPECT_EQ(header.data(), before);
}

TEST(BufferTest, CrcOverSliceMatchesCopiedRange) {
  Bytes raw;
  for (int i = 0; i < 256; ++i) {
    raw.push_back(static_cast<uint8_t>(i * 7));
  }
  const Bytes expected_range(raw.begin() + 50, raw.begin() + 150);
  Buffer whole(std::move(raw));
  Buffer mid = whole.Slice(50, 100);
  EXPECT_EQ(Crc32(mid.data(), mid.size()),
            Crc32(expected_range.data(), expected_range.size()));
}

TEST(BufferTest, StringRoundTripAndView) {
  Buffer b = Buffer::FromString("hello rover");
  EXPECT_EQ(b.view(), "hello rover");
  EXPECT_EQ(b.ToString(), "hello rover");
  Buffer tail = b.Slice(6, 5);
  EXPECT_EQ(tail.view(), "rover");
}

TEST(BufferTest, EmptyBufferBehaves) {
  Buffer empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.data(), nullptr);
  EXPECT_EQ(empty.MutableData(), nullptr);
  EXPECT_EQ(empty, Buffer());
  EXPECT_EQ(empty.ToBytes(), Bytes{});
  Buffer from_empty_bytes{Bytes{}};
  EXPECT_TRUE(from_empty_bytes.empty());
}


TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = ConflictError("slot taken");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kConflict);
  EXPECT_EQ(s.message(), "slot taken");
  EXPECT_EQ(s.ToString(), "CONFLICT: slot taken");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFoundError("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r(Status::Ok());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Doubler(Result<int> in) {
  ROVER_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(InvalidArgumentError("x")).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TimeTest, DurationArithmetic) {
  const Duration d = Duration::Millis(1500);
  EXPECT_EQ(d.micros(), 1'500'000);
  EXPECT_DOUBLE_EQ(d.seconds(), 1.5);
  EXPECT_EQ((d + Duration::Millis(500)).seconds(), 2.0);
  EXPECT_EQ((d - Duration::Seconds(1)).millis(), 500.0);
  EXPECT_LT(Duration::Micros(1), Duration::Millis(1));
}

TEST(TimeTest, TimePointArithmetic) {
  const TimePoint t = TimePoint::Epoch() + Duration::Seconds(2);
  EXPECT_EQ((t - TimePoint::Epoch()).seconds(), 2.0);
  EXPECT_GT(t + Duration::Micros(1), t);
}

TEST(TimeTest, ToStringPicksUnits) {
  EXPECT_EQ(Duration::Micros(250).ToString(), "250us");
  EXPECT_EQ(Duration::Millis(12).ToString(), "12.000ms");
  EXPECT_EQ(Duration::Seconds(3.25).ToString(), "3.250s");
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(6);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(WireTest, VarintRoundTrip) {
  WireWriter w;
  const uint64_t values[] = {0, 1, 127, 128, 300, 1u << 20, UINT64_MAX};
  for (uint64_t v : values) {
    w.WriteVarint(v);
  }
  WireReader r(w.data());
  for (uint64_t v : values) {
    auto got = r.ReadVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, ZigzagRoundTrip) {
  WireWriter w;
  const int64_t values[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  for (int64_t v : values) {
    w.WriteZigzag(v);
  }
  WireReader r(w.data());
  for (int64_t v : values) {
    auto got = r.ReadZigzag();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

TEST(WireTest, StringAndBytesRoundTrip) {
  WireWriter w;
  w.WriteString("hello rover");
  w.WriteString("");
  w.WriteBytes(Bytes{0x00, 0xff, 0x7f});
  w.WriteDouble(3.14159);
  w.WriteBool(true);
  w.WriteFixed32(0xdeadbeef);
  w.WriteFixed64(0x0123456789abcdefULL);

  WireReader r(w.data());
  EXPECT_EQ(*r.ReadString(), "hello rover");
  EXPECT_EQ(*r.ReadString(), "");
  EXPECT_EQ(*r.ReadBytes(), (Bytes{0x00, 0xff, 0x7f}));
  EXPECT_DOUBLE_EQ(*r.ReadDouble(), 3.14159);
  EXPECT_TRUE(*r.ReadBool());
  EXPECT_EQ(*r.ReadFixed32(), 0xdeadbeefu);
  EXPECT_EQ(*r.ReadFixed64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, TruncatedReadsFail) {
  WireWriter w;
  w.WriteString("hello");
  Bytes data = w.TakeData();
  data.pop_back();
  WireReader r(data);
  EXPECT_EQ(r.ReadString().status().code(), StatusCode::kDataLoss);
}

TEST(WireTest, TruncatedVarintFails) {
  Bytes data{0x80, 0x80};  // continuation bits with no terminator
  WireReader r(data);
  EXPECT_EQ(r.ReadVarint().status().code(), StatusCode::kDataLoss);
}

TEST(WireTest, OverlongVarintFails) {
  Bytes data(11, 0x80);
  WireReader r(data);
  EXPECT_FALSE(r.ReadVarint().ok());
}

TEST(Crc32Test, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (standard check value).
  EXPECT_EQ(Crc32("123456789", 9), 0xcbf43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data.data(), data.size());
  uint32_t inc = Crc32(data.data(), 10);
  inc = Crc32Extend(inc, data.data() + 10, data.size() - 10);
  EXPECT_EQ(inc, whole);
}

TEST(Crc32Test, DetectsCorruption) {
  Bytes data(100, 0x42);
  const uint32_t before = Crc32(data.data(), data.size());
  data[50] ^= 1;
  EXPECT_NE(Crc32(data.data(), data.size()), before);
}

TEST(CompressTest, RoundTripRepetitive) {
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "From: rover@lcs.mit.edu\nSubject: queued rpc\n";
  }
  const Bytes input = BytesFromString(text);
  const Bytes packed = LzCompress(input);
  EXPECT_LT(packed.size(), input.size() / 4);
  auto unpacked = LzDecompress(packed);
  ASSERT_TRUE(unpacked.ok());
  EXPECT_EQ(*unpacked, input);
}

TEST(CompressTest, RoundTripRandomIncompressible) {
  Rng rng(9);
  Bytes input(4096);
  for (auto& b : input) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  const Bytes packed = LzCompress(input);
  auto unpacked = LzDecompress(packed);
  ASSERT_TRUE(unpacked.ok());
  EXPECT_EQ(*unpacked, input);
}

TEST(CompressTest, EmptyInput) {
  const Bytes packed = LzCompress({});
  auto unpacked = LzDecompress(packed);
  ASSERT_TRUE(unpacked.ok());
  EXPECT_TRUE(unpacked->empty());
}

TEST(CompressTest, OverlappingMatch) {
  // "aaaa..." compresses via self-overlapping copies.
  const Bytes input(1000, 'a');
  const Bytes packed = LzCompress(input);
  EXPECT_LT(packed.size(), 32u);
  auto unpacked = LzDecompress(packed);
  ASSERT_TRUE(unpacked.ok());
  EXPECT_EQ(*unpacked, input);
}

TEST(CompressTest, CorruptInputRejected) {
  Bytes bogus{0x85, 0xff, 0xff};  // match token with distance past output
  EXPECT_EQ(LzDecompress(bogus).status().code(), StatusCode::kDataLoss);
  Bytes truncated{0x05, 'a'};  // literal run of 6 with 1 byte present
  EXPECT_EQ(LzDecompress(truncated).status().code(), StatusCode::kDataLoss);
}

class CompressSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CompressSweepTest, RoundTripMixedContent) {
  const size_t size = GetParam();
  Rng rng(size + 1);
  Bytes input;
  input.reserve(size);
  const std::string vocab[] = {"GET ", "http://", "rover/", "object", " HTTP/1.0\r\n"};
  while (input.size() < size) {
    if (rng.NextBool(0.7)) {
      const std::string& word = vocab[rng.NextBelow(5)];
      input.insert(input.end(), word.begin(), word.end());
    } else {
      input.push_back(static_cast<uint8_t>(rng.NextU64()));
    }
  }
  input.resize(size);
  auto unpacked = LzDecompress(LzCompress(input));
  ASSERT_TRUE(unpacked.ok());
  EXPECT_EQ(*unpacked, input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompressSweepTest,
                         ::testing::Values(1, 2, 3, 15, 127, 128, 129, 1000, 65536,
                                           200000));

}  // namespace
}  // namespace rover
