#include <gtest/gtest.h>

#include <string>

#include "src/rdo/migration.h"
#include "src/rdo/rdo.h"
#include "src/sim/event_loop.h"

namespace rover {
namespace {

// A small counter RDO used throughout.
constexpr char kCounterCode[] = R"(
proc get {} { global state; return $state }
proc add {n} { global state; set state [expr {$state + $n}]; return $state }
proc reset {} { global state; set state 0; return 0 }
)";

RdoDescriptor CounterDescriptor(const std::string& name = "test/counter") {
  RdoDescriptor d;
  d.name = name;
  d.version = 3;
  d.type = "lww";
  d.code = kCounterCode;
  d.data = "10";
  d.metadata["content-type"] = "counter";
  return d;
}

TEST(RdoDescriptorTest, EncodeDecodeRoundTrip) {
  RdoDescriptor d = CounterDescriptor();
  auto decoded = RdoDescriptor::Decode(d.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->name, d.name);
  EXPECT_EQ(decoded->version, 3u);
  EXPECT_EQ(decoded->type, "lww");
  EXPECT_EQ(decoded->code, d.code);
  EXPECT_EQ(decoded->data, "10");
  EXPECT_EQ(decoded->metadata.at("content-type"), "counter");
}

TEST(RdoDescriptorTest, CorruptBytesRejected) {
  Bytes data = CounterDescriptor().Encode();
  data.resize(3);
  EXPECT_FALSE(RdoDescriptor::Decode(data).ok());
}

TEST(RdoDescriptorTest, ByteSizeCountsComponents) {
  RdoDescriptor d = CounterDescriptor();
  EXPECT_GT(d.ByteSize(), d.code.size() + d.data.size());
}

class RdoInstanceTest : public ::testing::Test {
 protected:
  RdoEnvironment Env() {
    RdoEnvironment env;
    env.host_name = "mobile";
    env.now = [this] { return loop_.now(); };
    env.log = [this](const std::string& line) { log_lines_.push_back(line); };
    return env;
  }

  EventLoop loop_;
  std::vector<std::string> log_lines_;
};

TEST_F(RdoInstanceTest, LoadAndInvoke) {
  auto instance = RdoInstance::Create(CounterDescriptor(), Env());
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(*(*instance)->Invoke("get", {}), "10");
  EXPECT_EQ(*(*instance)->Invoke("add", {"5"}), "15");
  EXPECT_EQ(*(*instance)->Invoke("get", {}), "15");
}

TEST_F(RdoInstanceTest, DirtyTracksMutation) {
  auto instance = RdoInstance::Create(CounterDescriptor(), Env());
  ASSERT_TRUE(instance.ok());
  EXPECT_FALSE((*instance)->dirty());
  ASSERT_TRUE((*instance)->Invoke("get", {}).ok());
  EXPECT_FALSE((*instance)->dirty());  // read-only method
  ASSERT_TRUE((*instance)->Invoke("add", {"1"}).ok());
  EXPECT_TRUE((*instance)->dirty());
}

TEST_F(RdoInstanceTest, SnapshotCapturesState) {
  auto instance = RdoInstance::Create(CounterDescriptor(), Env());
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE((*instance)->Invoke("add", {"32"}).ok());
  RdoDescriptor snap = (*instance)->Snapshot();
  EXPECT_EQ(snap.data, "42");
  EXPECT_EQ(snap.version, 3u);  // version assigned by the store, not here
  EXPECT_EQ(snap.code, std::string(kCounterCode));
}

TEST_F(RdoInstanceTest, WriteStateClearsDirty) {
  auto instance = RdoInstance::Create(CounterDescriptor(), Env());
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE((*instance)->Invoke("add", {"1"}).ok());
  (*instance)->WriteState("99");
  EXPECT_FALSE((*instance)->dirty());
  EXPECT_EQ(*(*instance)->Invoke("get", {}), "99");
}

TEST_F(RdoInstanceTest, UnknownMethodFails) {
  auto instance = RdoInstance::Create(CounterDescriptor(), Env());
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ((*instance)->Invoke("missing", {}).status().code(), StatusCode::kNotFound);
}

TEST_F(RdoInstanceTest, MethodErrorSurfaces) {
  RdoDescriptor d = CounterDescriptor();
  d.code = "proc boom {} { error kapow }";
  auto instance = RdoInstance::Create(d, Env());
  ASSERT_TRUE(instance.ok());
  auto r = (*instance)->Invoke("boom", {});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("kapow"), std::string::npos);
}

TEST_F(RdoInstanceTest, BadCodeFailsToLoad) {
  RdoDescriptor d = CounterDescriptor();
  d.code = "proc broken {";
  EXPECT_FALSE(RdoInstance::Create(d, Env()).ok());
}

TEST_F(RdoInstanceTest, HostCommandsAvailable) {
  RdoDescriptor d = CounterDescriptor();
  d.code = R"(
proc where {} { return [rover-host] }
proc when {} { return [rover-now] }
proc say {msg} { rover-log $msg; return ok }
)";
  loop_.ScheduleAt(TimePoint::FromMicros(5000), [] {});
  loop_.Run();
  auto instance = RdoInstance::Create(d, Env());
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(*(*instance)->Invoke("where", {}), "mobile");
  EXPECT_EQ(*(*instance)->Invoke("when", {}), "5000");
  EXPECT_EQ(*(*instance)->Invoke("say", {"hello"}), "ok");
  ASSERT_EQ(log_lines_.size(), 1u);
  EXPECT_EQ(log_lines_[0], "hello");
}

TEST_F(RdoInstanceTest, BudgetResetsPerInvocation) {
  ExecLimits limits;
  limits.max_commands = 2000;
  RdoDescriptor d = CounterDescriptor();
  d.code = R"(
proc spin {n} { for {set i 0} {$i < $n} {incr i} {}; return $i }
proc forever {} { while {1} {} }
)";
  auto instance = RdoInstance::Create(d, Env(), limits);
  ASSERT_TRUE(instance.ok());
  // Each call is within budget individually; many calls must all succeed.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE((*instance)->Invoke("spin", {"100"}).ok());
  }
  // A runaway method is stopped.
  EXPECT_FALSE((*instance)->Invoke("forever", {}).ok());
  // And the instance remains usable afterwards.
  EXPECT_TRUE((*instance)->Invoke("spin", {"10"}).ok());
}

TEST_F(RdoInstanceTest, InvokeCountsCommands) {
  auto instance = RdoInstance::Create(CounterDescriptor(), Env());
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE((*instance)->Invoke("add", {"1"}).ok());
  EXPECT_GT((*instance)->last_invoke_commands(), 0u);
  EXPECT_LT((*instance)->last_invoke_commands(), 50u);
}

TEST_F(RdoInstanceTest, MethodsListed) {
  auto instance = RdoInstance::Create(CounterDescriptor(), Env());
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE((*instance)->HasMethod("add"));
  EXPECT_FALSE((*instance)->HasMethod("multiply"));
  EXPECT_EQ((*instance)->Methods().size(), 3u);
}

TEST(MigrationPolicyTest, DisconnectedAlwaysClient) {
  MigrationPolicy policy;
  for (auto mode : {MigrationPolicy::Mode::kAlwaysClient,
                    MigrationPolicy::Mode::kAlwaysServer,
                    MigrationPolicy::Mode::kAdaptive}) {
    policy.mode = mode;
    EXPECT_EQ(policy.Decide(true, false, 0.0), ExecutionSite::kClient);
  }
}

TEST(MigrationPolicyTest, AdaptiveUsesThreshold) {
  MigrationPolicy policy;
  policy.mode = MigrationPolicy::Mode::kAdaptive;
  policy.client_threshold_bps = 5e6;
  // Slow link, cached -> client.
  EXPECT_EQ(policy.Decide(true, true, 14.4e3), ExecutionSite::kClient);
  EXPECT_EQ(policy.Decide(true, true, 2e6), ExecutionSite::kClient);
  // Fast LAN -> server.
  EXPECT_EQ(policy.Decide(true, true, 10e6), ExecutionSite::kServer);
  // Not cached -> server regardless of speed.
  EXPECT_EQ(policy.Decide(false, true, 14.4e3), ExecutionSite::kServer);
}

TEST(MigrationPolicyTest, FixedModes) {
  MigrationPolicy policy;
  policy.mode = MigrationPolicy::Mode::kAlwaysServer;
  EXPECT_EQ(policy.Decide(true, true, 14.4e3), ExecutionSite::kServer);
  policy.mode = MigrationPolicy::Mode::kAlwaysClient;
  EXPECT_EQ(policy.Decide(true, true, 10e6), ExecutionSite::kClient);
  EXPECT_EQ(policy.Decide(false, true, 10e6), ExecutionSite::kServer);  // nothing cached
}

}  // namespace
}  // namespace rover
