// Full-stack integration scenarios: multiple applications, multiple
// clients, relays, crashes, and long disconnections running together in
// one simulated world -- the kind of day the paper's introduction
// describes.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/apps/calendar.h"
#include "src/apps/mail.h"
#include "src/apps/web.h"
#include "src/core/toolkit.h"
#include "src/tclite/value.h"

namespace rover {
namespace {

TEST(IntegrationTest, FullCommuterDay) {
  // Morning: docked Ethernet. Day: WaveLAN patches. Evening: dial-up.
  Testbed bed;
  MailService mail_service(bed.server());
  ASSERT_TRUE(mail_service.CreateFolder("inbox").ok());
  for (int i = 0; i < 6; ++i) {
    MailMessage m;
    m.id = std::to_string(i);
    m.from = "colleague@lcs.mit.edu";
    m.to = "user@lcs.mit.edu";
    m.subject = "item " + std::to_string(i);
    m.body = std::string(1200, 'b');
    ASSERT_TRUE(mail_service.DeliverLocal("inbox", m).ok());
  }
  ASSERT_TRUE(CreateCalendar(bed.server(), "me").ok());
  SyntheticWebOptions web;
  web.page_count = 15;
  ASSERT_TRUE(BuildSyntheticWeb(bed.server(), web).ok());

  // Ethernet while docked (first 10 min).
  bed.AddClient("laptop", LinkProfile::Ethernet10(),
                std::make_unique<IntervalConnectivity>(
                    std::vector<IntervalConnectivity::Interval>{
                        {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(600)}}));
  // Spotty WaveLAN during the day (10 min on / 50 min off).
  bed.AddClient("laptop", LinkProfile::WaveLan2(),
                std::make_unique<PeriodicConnectivity>(
                    Duration::Seconds(600), Duration::Seconds(3000),
                    TimePoint::Epoch() + Duration::Seconds(3600)));
  // Evening dial-up from 10h on.
  RoverClientNode* laptop = bed.AddClient(
      "laptop", LinkProfile::Cslip144(),
      std::make_unique<PeriodicConnectivity>(Duration::Seconds(1e7), Duration::Zero(),
                                             TimePoint::Epoch() + Duration::Seconds(36000)));

  MailReader reader(bed.loop(), laptop);
  CalendarApp cal(bed.loop(), laptop, "me");
  BrowserProxy proxy(bed.loop(), laptop);

  // 1. Morning: open + prefetch everything.
  auto folder = reader.OpenFolder("inbox");
  ASSERT_TRUE(folder.Wait(bed.loop()));
  ASSERT_TRUE(reader.PrefetchFolder("inbox").ok());
  ASSERT_TRUE(cal.Open().Wait(bed.loop()));
  for (int i = 0; i < 15; ++i) {
    proxy.Request("page/" + std::to_string(i)).Wait(bed.loop());
  }
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(599));

  // 2. Off the dock: work disconnected.
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(1000));
  ASSERT_FALSE(laptop->access()->Connected());
  for (int i = 0; i < 6; ++i) {
    auto body = reader.ReadMessage("inbox", std::to_string(i));
    ASSERT_TRUE(body.Wait(bed.loop()));
    ASSERT_TRUE(body.value().ok());
  }
  ASSERT_TRUE(cal.Book("thu-4pm", "writing block").Wait(bed.loop()));
  auto page = proxy.Request("page/3");
  ASSERT_TRUE(page.Wait(bed.loop()));
  EXPECT_TRUE(page.value().from_cache);

  // Queue outgoing work.
  MailMessage reply;
  reply.id = "r1";
  reply.to = "colleague@lcs.mit.edu";
  reply.subject = "Re: item 2";
  reply.body = "answered on the train";
  QrpcCall sent = reader.Send("colleague-inbox", reply);
  auto synced = cal.Sync();
  reader.SyncReadMarks("inbox");

  // 3. Midday WaveLAN window at t=3600s drains some of the queue.
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(5000));
  EXPECT_TRUE(sent.result.ready());
  EXPECT_TRUE(synced.ready());
  EXPECT_TRUE(synced.value().status.ok());

  // 4. End state: server saw everything exactly once.
  bed.loop()->set_event_limit(20'000'000);
  bed.Run();
  EXPECT_TRUE(bed.server()->store()->Exists(MailMessageObject("colleague-inbox", "r1")));
  EXPECT_NE(bed.server()->store()->Get(CalendarObject("me"))->data.find("writing block"),
            std::string::npos);
  auto inbox0 =
      DecodeMailState(bed.server()->store()->Get(MailMessageObject("inbox", "0"))->data);
  ASSERT_TRUE(inbox0.ok());
  EXPECT_TRUE(inbox0->read);
  EXPECT_EQ(laptop->access()->TentativeCount(), 0u);
}

TEST(IntegrationTest, RelayOnlyClientReachesServer) {
  // The client and server are never directly connected; everything flows
  // through the SMTP relay -- including the response, which the server
  // routes back via the request's reply_via hint (the paper's SMTP
  // transport carried both directions).
  Testbed bed;
  MailService mail_service(bed.server());
  ASSERT_TRUE(mail_service.CreateFolder("inbox").ok());
  RoverClientNode* client = bed.AddDetachedClient("fieldunit");
  SmtpRelay* relay = bed.AddRelay("relay", "fieldunit", LinkProfile::Cslip24(),
                                  LinkProfile::Ethernet10());
  ASSERT_NE(client, nullptr);

  QrpcCallOptions opts;
  opts.via_relay = true;
  opts.relay_host = "relay";
  MailMessage report;
  report.id = "field-report-1";
  report.to = "hq";
  report.subject = "daily report";
  report.body = std::string(2000, 'f');
  QrpcCall call = client->qrpc()->Call(
      "server", "mail.deliver", {std::string("inbox"), EncodeMailState(report)}, opts);
  bed.Run();
  EXPECT_TRUE(call.committed.ready());
  // Request out + response back: two envelopes through the relay, and the
  // client sees the server's answer despite never touching it directly.
  EXPECT_EQ(relay->stats().envelopes_forwarded, 2u);
  ASSERT_TRUE(call.result.ready());
  EXPECT_TRUE(call.result.value().status.ok());
  EXPECT_TRUE(bed.server()->store()->Exists(MailMessageObject("inbox", "field-report-1")));
  EXPECT_EQ(client->qrpc()->PendingCount(), 0u);
}

TEST(IntegrationTest, ServerRestartPreservesObjectsAndVersions) {
  Testbed bed;
  ASSERT_TRUE(CreateCalendar(bed.server(), "team").ok());
  RoverClientNode* client = bed.AddClient("laptop", LinkProfile::WaveLan2());
  CalendarApp cal(bed.loop(), client, "team");
  ASSERT_TRUE(cal.Open().Wait(bed.loop()));
  ASSERT_TRUE(cal.Book("mon-9am", "standup").Wait(bed.loop()));
  ASSERT_TRUE(cal.Sync().Wait(bed.loop()));
  const uint64_t version_before = *bed.server()->store()->VersionOf(CalendarObject("team"));

  // Server "restart": snapshot + reload the store in place.
  const Bytes snapshot = bed.server()->store()->Serialize();
  ASSERT_TRUE(bed.server()->store()->Load(snapshot).ok());
  EXPECT_EQ(*bed.server()->store()->VersionOf(CalendarObject("team")), version_before);

  // Post-restart: a stale-base export still reconciles against preserved
  // history (the ancestor survived the snapshot).
  ASSERT_TRUE(cal.Book("tue-9am", "review").Wait(bed.loop()));
  auto sync = cal.Sync();
  ASSERT_TRUE(sync.Wait(bed.loop()));
  EXPECT_TRUE(sync.value().status.ok());
  EXPECT_NE(bed.server()->store()->Get(CalendarObject("team"))->data.find("standup"),
            std::string::npos);
}

TEST(IntegrationTest, ThreeClientsShareCalendarThroughConflicts) {
  Testbed bed;
  ASSERT_TRUE(CreateCalendar(bed.server(), "room").ok());
  std::vector<RoverClientNode*> nodes;
  std::vector<std::unique_ptr<CalendarApp>> cals;
  for (int i = 0; i < 3; ++i) {
    nodes.push_back(bed.AddClient("user" + std::to_string(i), LinkProfile::WaveLan2()));
    cals.push_back(std::make_unique<CalendarApp>(bed.loop(), nodes.back(), "room"));
    ASSERT_TRUE(cals.back()->Open().Wait(bed.loop()));
  }
  // All three book: two distinct slots and one collision with user0.
  ASSERT_TRUE(cals[0]->Book("mon-10", "u0 meeting").Wait(bed.loop()));
  ASSERT_TRUE(cals[1]->Book("tue-11", "u1 meeting").Wait(bed.loop()));
  ASSERT_TRUE(cals[2]->Book("mon-10", "u2 meeting").Wait(bed.loop()));

  ASSERT_TRUE(cals[0]->Sync().Wait(bed.loop()));
  auto s1 = cals[1]->Sync();
  ASSERT_TRUE(s1.Wait(bed.loop()));
  EXPECT_TRUE(s1.value().status.ok());  // disjoint -> resolver merge
  auto s2 = cals[2]->Sync();
  ASSERT_TRUE(s2.Wait(bed.loop()));
  EXPECT_EQ(s2.value().status.code(), StatusCode::kConflict);  // true collision

  // user2 re-books and converges.
  ASSERT_TRUE(cals[2]->Cancel("mon-10").Wait(bed.loop()));
  ASSERT_TRUE(cals[2]->Book("wed-10", "u2 meeting").Wait(bed.loop()));
  auto retry = cals[2]->Sync();
  ASSERT_TRUE(retry.Wait(bed.loop()));
  EXPECT_TRUE(retry.value().status.ok());

  const std::string final_state = bed.server()->store()->Get(CalendarObject("room"))->data;
  EXPECT_NE(final_state.find("u0 meeting"), std::string::npos);
  EXPECT_NE(final_state.find("u1 meeting"), std::string::npos);
  EXPECT_NE(final_state.find("wed-10"), std::string::npos);
  EXPECT_EQ(bed.server()->store()->stats().unresolved_conflicts, 1u);
}

TEST(IntegrationTest, SchedulerStatsAccountForTraffic) {
  Testbed bed;
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("obj", "lww", "proc get {} { global state; return $state }",
              std::string(5000, 'x'))).ok());
  RoverClientNode* client = bed.AddClient("laptop", LinkProfile::Cslip144());
  client->access()->Import("obj").Wait(bed.loop());
  const auto& client_stats = client->transport()->scheduler()->stats();
  EXPECT_EQ(client_stats.messages_enqueued, 1u);
  EXPECT_EQ(client_stats.messages_delivered, 1u);
  EXPECT_GT(client_stats.bytes_sent, 0u);
  // The link carried (at least) the request + the 5 KB response.
  uint64_t wire = 0;
  for (const auto& link : bed.network()->all_links()) {
    wire += link->stats().payload_bytes;
  }
  EXPECT_GT(wire, 5000u);
}

}  // namespace
}  // namespace rover
