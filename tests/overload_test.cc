// End-to-end overload protection tests.
//
// Part 1 unit-tests the pure primitives in src/transport/overload.h --
// decorrelated-jitter backoff, token-bucket retry budget, circuit breaker --
// with explicit TimePoints (no sleeps, no wall clock).
// Part 2 covers scheduler admission: queue depth/byte budgets, priority-
// aware shedding (background first, durable app ops never silently dropped).
// Part 3 covers scheduler retry pacing on a lossy link: budget-gated retries
// and breaker open/half-open/re-open transitions.
// Part 4 covers QRPC client admission (call count + stable-log byte budget)
// and server concurrency pushback with client-honored retry-after hints.
// Part 5 covers the access manager's degraded mode and the cache-overflow
// gauge.
// Part 6 is the seeded overload chaos scenario: 2x sustained load over a
// flapping lossy link against a concurrency-limited server, asserting the
// client stays within its memory budgets, retries stay within the retry
// budget, durable ops are never shed, and everything drains to convergence
// once the pressure lifts. Extra seeds can be supplied via the
// ROVER_OVERLOAD_SEEDS / ROVER_OVERLOAD_SEED_COUNT environment variables
// (used by the CI chaos job, which runs the binary directly).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/check/simcheck.h"
#include "src/core/fault_plan.h"
#include "src/core/toolkit.h"
#include "src/sim/network.h"
#include "src/tclite/value.h"
#include "src/transport/overload.h"
#include "src/transport/scheduler.h"
#include "src/transport/transport.h"

namespace rover {
namespace {

constexpr char kJournalCode[] = R"(
proc get {} { global state; return $state }
proc add {t} { global state; lappend state $t; return $state }
)";

TimePoint At(double seconds) {
  return TimePoint::Epoch() + Duration::Seconds(seconds);
}

// --- Part 1: primitives ----------------------------------------------------

TEST(DecorrelatedJitterBackoffTest, FirstIntervalIsBaseAndBoundsHold) {
  const Duration base = Duration::Millis(200);
  const Duration cap = Duration::Seconds(30);
  DecorrelatedJitterBackoff backoff(base, cap, 42);
  Duration prev = backoff.Next();
  // The first interval after construction (or Reset) is exactly the base:
  // the first retry after a state change is fast and deterministic.
  EXPECT_EQ(prev.micros(), base.micros());
  for (int i = 0; i < 200; ++i) {
    const Duration d = backoff.Next();
    EXPECT_GE(d.micros(), base.micros());
    EXPECT_LE(d.micros(), cap.micros());
    EXPECT_LE(d.micros(), std::min(cap.micros(), 3 * prev.micros()));
    prev = d;
  }
}

TEST(DecorrelatedJitterBackoffTest, ResetReturnsToBase) {
  const Duration base = Duration::Millis(100);
  DecorrelatedJitterBackoff backoff(base, Duration::Seconds(10), 7);
  for (int i = 0; i < 10; ++i) {
    backoff.Next();
  }
  backoff.Reset();
  EXPECT_EQ(backoff.Next().micros(), base.micros());
}

TEST(DecorrelatedJitterBackoffTest, SameSeedSameSequenceDifferentSeedDiffers) {
  const Duration base = Duration::Millis(100);
  const Duration cap = Duration::Seconds(60);
  DecorrelatedJitterBackoff a(base, cap, 1), b(base, cap, 1), c(base, cap, 2);
  bool c_differs = false;
  for (int i = 0; i < 50; ++i) {
    const Duration da = a.Next();
    EXPECT_EQ(da.micros(), b.Next().micros());
    if (da.micros() != c.Next().micros()) {
      c_differs = true;
    }
  }
  EXPECT_TRUE(c_differs);
}

TEST(DecorrelatedJitterBackoffTest, ClampsToCap) {
  const Duration base = Duration::Seconds(1);
  const Duration cap = Duration::Seconds(2);
  DecorrelatedJitterBackoff backoff(base, cap, 3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(backoff.Next().micros(), cap.micros());
  }
}

TEST(RetryBudgetTest, ConsumesAndRefillsAtConfiguredRate) {
  RetryBudget budget(4, 2.0);  // 4 tokens, 2/s
  ASSERT_TRUE(budget.enabled());
  const TimePoint t0 = At(0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(budget.TryConsume(t0)) << "token " << i;
  }
  EXPECT_FALSE(budget.TryConsume(t0));
  EXPECT_DOUBLE_EQ(budget.available(t0), 0.0);
  // 2/s refill: one full token 500ms later.
  EXPECT_FALSE(budget.TryConsume(At(0.25)));
  EXPECT_TRUE(budget.TryConsume(At(0.5)));
  // Refill clamps at capacity.
  EXPECT_DOUBLE_EQ(budget.available(At(1000)), 4.0);
}

TEST(RetryBudgetTest, ReserveRunsIntoDebtCoveredAtRefillRate) {
  RetryBudget budget(2, 1.0);  // 2 tokens, 1/s
  const TimePoint t0 = At(0);
  EXPECT_EQ(budget.Reserve(t0).micros(), t0.micros());
  EXPECT_EQ(budget.Reserve(t0).micros(), t0.micros());
  // Bucket empty: each further reservation is covered one refill later.
  EXPECT_EQ(budget.Reserve(t0).micros(), At(1).micros());
  EXPECT_EQ(budget.Reserve(t0).micros(), At(2).micros());
  // The debt repays at exactly the refill rate: no token before then.
  EXPECT_FALSE(budget.TryConsume(At(2.5)));
}

TEST(RetryBudgetTest, ZeroRefillEmptyBucketNeverRecovers) {
  RetryBudget budget(1, 0.0);
  EXPECT_TRUE(budget.TryConsume(At(0)));
  EXPECT_FALSE(budget.TryConsume(At(1e6)));
  // The sentinel for "never": callers must treat it as drop, not wait.
  EXPECT_EQ(budget.NextTokenAt(At(1)).micros(), INT64_MAX);
}

TEST(RetryBudgetTest, ZeroCapacityDisablesBudget) {
  RetryBudget budget(0, 10.0);
  EXPECT_FALSE(budget.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(budget.TryConsume(At(0)));
  }
}

TEST(CircuitBreakerTest, OpensAtThresholdThenHalfOpenProbeCloses) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 3;
  opts.open_duration = Duration::Seconds(2);
  CircuitBreaker breaker(opts);

  EXPECT_TRUE(breaker.AllowAttempt(At(0)));
  breaker.RecordFailure(At(0));
  breaker.RecordFailure(At(0.1));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordFailure(At(0.2));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.AllowAttempt(At(0.3)));
  EXPECT_FALSE(breaker.AllowAttempt(At(2.1)));  // cooldown from last failure

  // Cooldown passed: exactly one half-open probe is granted.
  EXPECT_TRUE(breaker.AllowAttempt(At(2.3)));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.AllowAttempt(At(2.3)));
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  EXPECT_TRUE(breaker.AllowAttempt(At(2.4)));
}

TEST(CircuitBreakerTest, FailedProbeReopensWithDoubledCooldownUpToCap) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 1;
  opts.open_duration = Duration::Seconds(2);
  opts.open_duration_max = Duration::Seconds(5);
  CircuitBreaker breaker(opts);

  breaker.RecordFailure(At(0));  // open, cooldown 2s
  ASSERT_TRUE(breaker.AllowAttempt(At(2)));
  breaker.RecordFailure(At(2));  // failed probe: reopen, cooldown 4s
  EXPECT_FALSE(breaker.AllowAttempt(At(5.9)));
  ASSERT_TRUE(breaker.AllowAttempt(At(6)));
  breaker.RecordFailure(At(6));  // reopen, cooldown 8s -> capped at 5s
  EXPECT_FALSE(breaker.AllowAttempt(At(10.9)));
  ASSERT_TRUE(breaker.AllowAttempt(At(11)));
  // A successful probe resets cooldown back to the base open duration.
  breaker.RecordSuccess();
  breaker.RecordFailure(At(12));
  EXPECT_FALSE(breaker.AllowAttempt(At(13.9)));
  EXPECT_TRUE(breaker.AllowAttempt(At(14)));
}

TEST(CircuitBreakerTest, AbortedProbePermitsAnotherProbe) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 1;
  opts.open_duration = Duration::Seconds(1);
  CircuitBreaker breaker(opts);
  breaker.RecordFailure(At(0));
  ASSERT_TRUE(breaker.AllowAttempt(At(1)));
  ASSERT_FALSE(breaker.AllowAttempt(At(1)));  // probe outstanding
  // The probe's frame died without an outcome (link dropped): without
  // AbortProbe the breaker would wedge half-open forever.
  breaker.AbortProbe();
  EXPECT_TRUE(breaker.AllowAttempt(At(1.1)));
}

TEST(CircuitBreakerTest, ZeroThresholdDisablesBreaker) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 0;
  CircuitBreaker breaker(opts);
  for (int i = 0; i < 50; ++i) {
    breaker.RecordFailure(At(i));
    EXPECT_TRUE(breaker.AllowAttempt(At(i)));
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, ResetForgetsHistory) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 1;
  CircuitBreaker breaker(opts);
  breaker.RecordFailure(At(0));
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  breaker.Reset();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.AllowAttempt(At(0.1)));
}

// --- Part 2: scheduler admission -------------------------------------------

Message MakeMessage(const std::string& dst, size_t payload_size, Priority priority) {
  Message msg;
  msg.header.type = MessageType::kRequest;
  msg.header.priority = priority;
  msg.header.dst = dst;
  msg.payload = Bytes(payload_size, 0x5a);
  return msg;
}

class SchedulerOverloadTest : public ::testing::Test {
 protected:
  SchedulerOverloadTest() : net_(&loop_) {}

  // Link down until t=60s so everything queues.
  void SetUpDisconnected(SchedulerOptions options) {
    std::vector<IntervalConnectivity::Interval> up = {{At(60), At(1e6)}};
    net_.Connect("mobile", "server", LinkProfile::WaveLan2(),
                 std::make_unique<IntervalConnectivity>(up));
    mobile_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("mobile"),
                                                 options);
  }

  EventLoop loop_;
  Network net_;
  std::unique_ptr<TransportManager> mobile_;
};

TEST_F(SchedulerOverloadTest, DepthBudgetRejectsBackgroundAndShedsForHigher) {
  SchedulerOptions opts;
  opts.max_queued_messages = 2;
  SetUpDisconnected(opts);
  NetworkScheduler* sched = mobile_->scheduler();

  std::vector<Status> bg_status(3);
  sched->Enqueue(MakeMessage("server", 10, Priority::kBackground),
                 [&](const Status& s) { bg_status[0] = s; });
  sched->Enqueue(MakeMessage("server", 10, Priority::kBackground),
                 [&](const Status& s) { bg_status[1] = s; });
  EXPECT_EQ(sched->TotalQueueDepth(), 2u);

  // A third background message is refused outright at the full queue.
  sched->Enqueue(MakeMessage("server", 10, Priority::kBackground),
                 [&](const Status& s) { bg_status[2] = s; });
  EXPECT_EQ(sched->TotalQueueDepth(), 2u);
  EXPECT_EQ(bg_status[2].code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(sched->stats().enqueue_rejected, 1u);

  // A default-priority message sheds the newest queued background instead.
  sched->Enqueue(MakeMessage("server", 10, Priority::kDefault));
  EXPECT_EQ(sched->TotalQueueDepth(), 2u);
  EXPECT_EQ(sched->stats().messages_shed, 1u);
  EXPECT_EQ(bg_status[1].code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(bg_status[0].ok()) << "oldest background shed out of order";

  // Another default sheds the remaining background...
  sched->Enqueue(MakeMessage("server", 10, Priority::kDefault));
  EXPECT_EQ(sched->stats().messages_shed, 2u);
  EXPECT_EQ(bg_status[0].code(), StatusCode::kResourceExhausted);
  // ...and with nothing left to shed, higher-priority traffic is still
  // admitted over budget: refusing it would strand durable application ops
  // (the QRPC layer bounds those upstream).
  sched->Enqueue(MakeMessage("server", 10, Priority::kDefault));
  EXPECT_EQ(sched->TotalQueueDepth(), 3u);
  EXPECT_EQ(sched->stats().enqueue_rejected, 1u);
}

TEST_F(SchedulerOverloadTest, ByteBudgetTracksQueuedPayload) {
  SchedulerOptions opts;
  opts.max_queued_bytes = 100;
  opts.compress = false;
  SetUpDisconnected(opts);
  NetworkScheduler* sched = mobile_->scheduler();

  Status bg;
  sched->Enqueue(MakeMessage("server", 60, Priority::kBackground),
                 [&](const Status& s) { bg = s; });
  EXPECT_EQ(sched->QueuedPayloadBytes(), 60u);
  // 60 + 60 > 100: the queued background message is shed to make room.
  sched->Enqueue(MakeMessage("server", 60, Priority::kDefault));
  EXPECT_EQ(sched->QueuedPayloadBytes(), 60u);
  EXPECT_EQ(sched->TotalQueueDepth(), 1u);
  EXPECT_EQ(bg.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(sched->stats().messages_shed, 1u);
}

// --- Part 3: retry pacing on a lossy link ----------------------------------

class LossySchedulerTest : public ::testing::Test {
 protected:
  LossySchedulerTest() : net_(&loop_) {}

  void SetUpLossy(SchedulerOptions options, double loss_prob) {
    LinkProfile wave = LinkProfile::WaveLan2();
    wave.loss_prob = loss_prob;
    net_.Connect("mobile", "server", wave);
    mobile_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("mobile"),
                                                 options);
  }

  EventLoop loop_;
  Network net_;
  std::unique_ptr<TransportManager> mobile_;
};

TEST_F(LossySchedulerTest, RetryBudgetPacesRetryStorm) {
  SchedulerOptions opts;
  opts.loss_retry_backoff = Duration::Millis(100);
  opts.loss_retry_backoff_max = Duration::Seconds(1);
  opts.retry_budget_capacity = 2;
  opts.retry_budget_refill_per_sec = 1;
  opts.breaker.failure_threshold = 0;  // isolate the budget
  SetUpLossy(opts, /*loss_prob=*/1.0);

  mobile_->Send(MakeMessage("server", 50, Priority::kDefault));
  loop_.RunUntil(At(10));
  const SchedulerStats s = mobile_->scheduler()->stats();
  // Unpaced, 100ms-1s jittered backoff would retry ~15-100 times in 10s.
  // The budget holds the long-term rate to refill_per_sec: initial burst of
  // 2 + ~1/s afterwards (+1 for the non-retry first attempt).
  EXPECT_LE(s.frames_sent, 2 + 10 + 1);
  EXPECT_GE(s.frames_sent, 5u);
  EXPECT_GT(s.retry_budget_waits, 0u);
}

TEST_F(LossySchedulerTest, BreakerOpensStopsTrafficAndReopensOnFailedProbe) {
  SchedulerOptions opts;
  opts.loss_retry_backoff = Duration::Millis(100);
  opts.loss_retry_backoff_max = Duration::Millis(200);
  opts.breaker.failure_threshold = 3;
  opts.breaker.open_duration = Duration::Seconds(2);
  SetUpLossy(opts, /*loss_prob=*/1.0);
  NetworkScheduler* sched = mobile_->scheduler();

  mobile_->Send(MakeMessage("server", 50, Priority::kDefault));
  // Three losses arrive within ~0.5s; the breaker opens for 2s.
  loop_.RunUntil(At(1));
  EXPECT_EQ(sched->BreakerStateFor("server"), BreakerState::kOpen);
  EXPECT_EQ(sched->stats().breaker_open_transitions, 1u);

  // While open, nothing is sent.
  const uint64_t frames_at_open = sched->stats().frames_sent;
  loop_.RunUntil(At(1.9));
  EXPECT_EQ(sched->stats().frames_sent, frames_at_open);

  // Cooldown passes: a single half-open probe fires, loses, and the breaker
  // reopens with a doubled cooldown.
  loop_.RunUntil(At(3.5));
  EXPECT_EQ(sched->stats().frames_sent, frames_at_open + 1);
  EXPECT_EQ(sched->stats().breaker_open_transitions, 2u);
  EXPECT_EQ(sched->BreakerStateFor("server"), BreakerState::kOpen);
}

// --- Part 4: QRPC admission and server pushback ----------------------------

TEST(QrpcOverloadTest, CallBudgetShedsBackgroundFirstNeverDurableOps) {
  Testbed bed;
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());
  ClientNodeOptions copts;
  copts.qrpc.max_outstanding_calls = 2;
  std::vector<IntervalConnectivity::Interval> up = {{At(60), At(1e6)}};
  RoverClientNode* client = bed.AddClient(
      "mobile", LinkProfile::WaveLan2(),
      std::make_unique<IntervalConnectivity>(up), copts);

  auto invoke = [&](const std::string& tok, Priority prio) {
    InvokeOptions io;
    io.force_site = ExecutionSite::kServer;
    io.priority = prio;
    return client->access()->Invoke("journal", "add", {tok}, io);
  };

  auto bg1 = invoke("bg1", Priority::kBackground);
  auto bg2 = invoke("bg2", Priority::kBackground);
  bed.RunFor(Duration::Millis(100));  // let both commit to the log
  EXPECT_EQ(client->qrpc()->PendingCount(), 2u);
  ASSERT_EQ(client->qrpc()->LogDepth(), 2u);

  // Over budget: a default call sheds the newest background call (its log
  // record is withdrawn) and is admitted in its place.
  auto d1 = invoke("d1", Priority::kDefault);
  bed.RunFor(Duration::Millis(100));
  ASSERT_TRUE(bg2.ready());
  EXPECT_EQ(bg2.value().status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(bg1.ready());
  EXPECT_EQ(client->qrpc()->stats().background_shed, 1u);
  EXPECT_EQ(client->qrpc()->PendingCount(), 2u);

  auto d2 = invoke("d2", Priority::kDefault);
  bed.RunFor(Duration::Millis(100));
  ASSERT_TRUE(bg1.ready());
  EXPECT_EQ(bg1.value().status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(client->qrpc()->stats().background_shed, 2u);

  // With no background left, a further call is explicitly refused at
  // Call(): kResourceExhausted before anything is logged, never a silent
  // drop of existing durable work.
  auto d3 = invoke("d3", Priority::kDefault);
  bed.RunFor(Duration::Millis(100));
  ASSERT_TRUE(d3.ready());
  EXPECT_EQ(d3.value().status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(client->qrpc()->stats().admission_rejected, 1u);
  EXPECT_EQ(client->qrpc()->PendingCount(), 2u);
  EXPECT_EQ(client->qrpc()->LogDepth(), 2u);

  // The admitted durable calls survive the disconnection and execute.
  bed.Run();
  ASSERT_TRUE(d1.ready());
  ASSERT_TRUE(d2.ready());
  EXPECT_TRUE(d1.value().status.ok()) << d1.value().status.message();
  EXPECT_TRUE(d2.value().status.ok()) << d2.value().status.message();
  auto tokens = TclListSplit(bed.server()->store()->Get("journal")->data);
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(*tokens, (std::vector<std::string>{"d1", "d2"}));
  EXPECT_EQ(client->qrpc()->LogDepth(), 0u);
}

TEST(QrpcOverloadTest, LogByteBudgetRejectsLoggedCallsOnly) {
  Testbed bed;
  ClientNodeOptions copts;
  copts.qrpc.max_log_bytes = 1;  // any logged record is over budget
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::Ethernet10(),
                                          nullptr, copts);

  QrpcCall logged = client->qrpc()->Call("server", "rover.list", {});
  ASSERT_TRUE(logged.result.Wait(bed.loop()));
  EXPECT_EQ(logged.result.value().status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(client->qrpc()->stats().admission_rejected, 1u);

  // Unlogged calls consume no stable-log budget and pass.
  QrpcCallOptions unlogged;
  unlogged.log_request = false;
  QrpcCall ok = client->qrpc()->Call("server", "rover.list", {}, unlogged);
  ASSERT_TRUE(ok.result.Wait(bed.loop()));
  EXPECT_TRUE(ok.result.value().status.ok()) << ok.result.value().status.message();
}

TEST(QrpcOverloadTest, ServerPushbackIsHonoredAndAllCallsEventuallyExecute) {
  Testbed::Options topts;
  topts.server.qrpc.max_concurrent_requests = 1;
  topts.server.qrpc.dispatch_cost = Duration::Millis(500);
  topts.server.qrpc.pushback_retry_after = Duration::Millis(200);
  Testbed bed(topts);
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::Ethernet10());

  std::vector<Promise<InvokeResult>> results;
  for (int i = 0; i < 3; ++i) {
    InvokeOptions io;
    io.force_site = ExecutionSite::kServer;
    results.push_back(client->access()->Invoke("journal", "add",
                                               {"tok" + std::to_string(i)}, io));
  }
  bed.Run();

  // The overflow requests were refused with retry-after hints, the client
  // kept them queued and re-sent after the hint, and each executed exactly
  // once -- rejections must not poison the duplicate cache.
  for (auto& r : results) {
    ASSERT_TRUE(r.ready());
    EXPECT_TRUE(r.value().status.ok()) << r.value().status.message();
  }
  auto tokens = TclListSplit(bed.server()->store()->Get("journal")->data);
  ASSERT_TRUE(tokens.ok());
  std::set<std::string> unique(tokens->begin(), tokens->end());
  EXPECT_EQ(unique.size(), 3u);
  EXPECT_GE(bed.server()->qrpc()->stats().requests_rejected, 2u);
  EXPECT_GE(client->qrpc()->stats().pushback_honored, 2u);
  EXPECT_EQ(client->qrpc()->LogDepth(), 0u);
  EXPECT_EQ(client->qrpc()->PendingCount(), 0u);
}

// --- Part 5: access manager degraded mode and overflow gauge ---------------

TEST(DegradedModeTest, EngagesUnderBacklogShedsPrefetchesRecoversWithHysteresis) {
  Testbed bed;
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("page", "lww", kJournalCode, "")).ok());
  ClientNodeOptions copts;
  copts.access.degraded_queue_depth = 2;
  std::vector<IntervalConnectivity::Interval> up = {{At(60), At(1e6)}};
  RoverClientNode* client = bed.AddClient(
      "mobile", LinkProfile::WaveLan2(),
      std::make_unique<IntervalConnectivity>(up), copts);

  QueueStatus last;
  client->access()->SetStatusCallback([&](const QueueStatus& s) { last = s; });
  EXPECT_FALSE(client->access()->Degraded());

  // Tentative-op queuing stays alive while the backlog builds...
  std::vector<Promise<InvokeResult>> results;
  for (int i = 0; i < 3; ++i) {
    InvokeOptions io;
    io.force_site = ExecutionSite::kServer;
    results.push_back(client->access()->Invoke("journal", "add",
                                               {"tok" + std::to_string(i)}, io));
  }
  bed.RunFor(Duration::Millis(200));
  EXPECT_TRUE(client->access()->Degraded());
  EXPECT_TRUE(last.degraded);
  EXPECT_NE(FormatQueueStatus(last).find("DEGRADED"), std::string::npos);
  EXPECT_EQ(client->access()->stats().degraded_entered, 1u);

  // ...but prefetches are refused at the door.
  client->access()->Prefetch({"page"});
  EXPECT_EQ(client->access()->stats().prefetches_shed, 1u);
  EXPECT_EQ(client->access()->stats().prefetch_issued, 0u);

  // Pressure lifts: the queue drains, degraded mode exits (depth fell to 0,
  // under the half-threshold hysteresis), the queued ops all executed, and
  // prefetching works again.
  bed.Run();
  EXPECT_FALSE(client->access()->Degraded());
  EXPECT_FALSE(last.degraded);
  for (auto& r : results) {
    ASSERT_TRUE(r.ready());
    EXPECT_TRUE(r.value().status.ok()) << r.value().status.message();
  }
  client->access()->Prefetch({"page"});
  bed.Run();
  EXPECT_EQ(client->access()->stats().prefetch_issued, 1u);
  EXPECT_TRUE(client->access()->HasCached("page"));
}

TEST(CacheOverflowTest, UnevictableOverflowIsCountedAndGaugeClearsOnRelief) {
  Testbed bed;
  const std::string big(300, 'x');
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("a", "lww", kJournalCode, big)).ok());
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("b", "lww", kJournalCode, big)).ok());
  ClientNodeOptions copts;
  copts.access.cache_capacity_bytes = 100;
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::Ethernet10(),
                                          nullptr, copts);

  ImportOptions pin;
  pin.pin = true;
  auto ia = client->access()->Import("a", pin);
  ASSERT_TRUE(ia.Wait(bed.loop()));
  ASSERT_TRUE(ia.value().status.ok());
  auto ib = client->access()->Import("b", pin);
  ASSERT_TRUE(ib.Wait(bed.loop()));
  ASSERT_TRUE(ib.value().status.ok());

  // Both entries are pinned: nothing is evictable, the cache overflows, and
  // the overage is surfaced instead of growing silently.
  EXPECT_GT(client->access()->CacheBytes(), copts.access.cache_capacity_bytes);
  EXPECT_EQ(client->access()->stats().cache_overflow_events, 1u);
  const int64_t over =
      client->metrics()->gauge("access_manager.cache_overflow_bytes")->value();
  EXPECT_EQ(static_cast<size_t>(over),
            client->access()->CacheBytes() - copts.access.cache_capacity_bytes);

  // Explicit eviction relieves the overflow; the gauge returns to zero.
  client->access()->Evict("a");
  client->access()->Evict("b");
  EXPECT_EQ(client->metrics()->gauge("access_manager.cache_overflow_bytes")->value(), 0);
  // One overage episode, one event: the counter did not tick per byte.
  EXPECT_EQ(client->access()->stats().cache_overflow_events, 1u);
}

// --- Part 6: seeded overload chaos -----------------------------------------

// Seeds come from the environment when set (the CI overload job runs the
// binary directly with an extended list); default is a small fixed set.
std::vector<uint64_t> OverloadSeeds() {
  std::vector<uint64_t> seeds;
  if (const char* env = std::getenv("ROVER_OVERLOAD_SEEDS")) {
    uint64_t v = 0;
    bool have = false;
    for (const char* p = env;; ++p) {
      if (*p >= '0' && *p <= '9') {
        v = v * 10 + static_cast<uint64_t>(*p - '0');
        have = true;
      } else {
        if (have) seeds.push_back(v);
        v = 0;
        have = false;
        if (*p == '\0') break;
      }
    }
  } else if (const char* env_n = std::getenv("ROVER_OVERLOAD_SEED_COUNT")) {
    const long n = std::atol(env_n);
    for (long s = 1; s <= n; ++s) seeds.push_back(static_cast<uint64_t>(s));
  }
  if (seeds.empty()) {
    for (uint64_t s = 1; s <= 6; ++s) seeds.push_back(s);
  }
  return seeds;
}

class OverloadChaosTest : public ::testing::TestWithParam<uint64_t> {};

// Sustained ~2x overload: 2 ops/s of durable foreground work plus periodic
// background prefetch bursts, pushed over a flapping lossy WaveLAN link at a
// concurrency-limited server that is also crash-restarted twice. Invariants:
//   1. the client's stable log and scheduler queue stay within their byte
//      budgets at every sampled instant (memory bounded under overload);
//   2. loss retries stay within the token-bucket retry budget;
//   3. durable (non-background) ops are never silently shed: each is either
//      explicitly refused at Call() (and then never executes) or executes
//      exactly once; every acknowledged op's token is present;
//   4. once the pressure lifts the system drains: empty log, no pending
//      calls, and a fresh import converges to the server's state.
TEST_P(OverloadChaosTest, SustainedOverloadDegradesGracefullyAndDrains) {
  Testbed::Options topts;
  topts.server.qrpc.max_concurrent_requests = 2;
  topts.server.qrpc.dispatch_cost = Duration::Millis(100);
  topts.server.qrpc.pushback_retry_after = Duration::Millis(200);
  Testbed bed(topts);
  bed.loop()->set_event_limit(20'000'000);

  check::SimCheck simcheck;
  simcheck.Attach(&bed);
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());
  const std::string page_data(400, 'p');
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(bed.server()->rover()->CreateObject(
        MakeRdo("page" + std::to_string(i), "lww", kJournalCode, page_data)).ok());
  }

  FaultPlan plan(bed.loop(), GetParam());
  LinkProfile wave = LinkProfile::WaveLan2();
  wave.loss_prob = 0.15;

  ClientNodeOptions copts;
  copts.scheduler.max_queued_messages = 16;
  copts.scheduler.max_queued_bytes = 8 << 10;
  copts.scheduler.retry_budget_capacity = 32;
  copts.scheduler.retry_budget_refill_per_sec = 4;
  copts.scheduler.breaker.failure_threshold = 4;
  copts.scheduler.breaker.open_duration = Duration::Millis(500);
  copts.qrpc.max_outstanding_calls = 24;
  copts.qrpc.max_log_bytes = 6 << 10;
  copts.access.degraded_queue_depth = 6;
  RoverClientNode* client = bed.AddClient(
      "mobile", wave,
      plan.FlappyConnectivity(Duration::Seconds(6), Duration::Seconds(3),
                              Duration::Seconds(40)),
      copts);

  // Offered load: one durable op every 500ms for 20s (~2x what the flapping
  // lossy link sustains), plus a background prefetch burst every 2.5s.
  constexpr int kTokens = 40;
  std::vector<Promise<InvokeResult>> results(kTokens);
  for (int i = 0; i < kTokens; ++i) {
    bed.loop()->ScheduleAt(At(1.0 + 0.5 * i), [&results, client, i] {
      InvokeOptions io;
      io.force_site = ExecutionSite::kServer;
      results[i] = client->access()->Invoke("journal", "add",
                                            {"tok" + std::to_string(i)}, io);
    });
  }
  for (int burst = 0; burst < 8; ++burst) {
    bed.loop()->ScheduleAt(At(2.0 + 2.5 * burst), [client, burst] {
      client->access()->Prefetch({"page" + std::to_string((burst * 3) % 6),
                                  "page" + std::to_string((burst * 3 + 1) % 6),
                                  "page" + std::to_string((burst * 3 + 2) % 6)});
    });
  }

  // Server flaps too: two crash-restarts during the loaded window.
  RandomFaultOptions fopts;
  fopts.horizon = Duration::Seconds(30);
  fopts.server_crashes = 2;
  fopts.client_crashes = 0;
  plan.ScheduleRandomFaults(bed.server(), {}, fopts);
  // One final client restart after the pressure lifts resends every durable
  // unanswered request (responses lost to server crashes have no other
  // resend trigger), so the run always quiesces with an empty log.
  plan.CrashClientAt(client, At(70));

  // Sample the client's memory every 250ms through the loaded window.
  size_t max_log_bytes = 0, max_queued_bytes = 0;
  auto sampler = std::make_shared<std::function<void()>>();
  *sampler = [&, sampler] {
    max_log_bytes = std::max(max_log_bytes, client->log()->TotalBytes());
    max_queued_bytes = std::max(
        max_queued_bytes, client->transport()->scheduler()->QueuedPayloadBytes());
    if (bed.loop()->now() < At(69)) {
      bed.loop()->ScheduleAfter(Duration::Millis(250), *sampler);
    }
  };
  bed.loop()->ScheduleAt(At(1), *sampler);

  bed.Run();

  // 1. Memory stayed within budget at every sample.
  EXPECT_LE(max_log_bytes, copts.qrpc.max_log_bytes);
  EXPECT_LE(max_queued_bytes, copts.scheduler.max_queued_bytes);

  // 2. Loss retries stayed within the token budget: burst capacity plus the
  // refill over the whole run, with slack for link-down requeues (counted
  // as retries but exempt from the budget -- reconnection, not loss).
  const double elapsed = (bed.loop()->now() - TimePoint::Epoch()).seconds();
  const SchedulerStats sched = client->transport()->scheduler()->stats();
  EXPECT_LE(sched.retries,
            copts.scheduler.retry_budget_capacity +
                copts.scheduler.retry_budget_refill_per_sec * elapsed + 40);

  // 3. At-most-once and no silent shedding of durable work.
  const std::string server_data = bed.server()->store()->Get("journal")->data;
  auto tokens = TclListSplit(server_data);
  ASSERT_TRUE(tokens.ok());
  std::set<std::string> present(tokens->begin(), tokens->end());
  EXPECT_EQ(present.size(), tokens->size())
      << "an add executed twice: [" << server_data << "]";
  for (int i = 0; i < kTokens; ++i) {
    const std::string tok = "tok" + std::to_string(i);
    if (!results[i].ready()) {
      continue;  // promise died with the client crash; covered by at-most-once
    }
    const Status& st = results[i].value().status;
    if (st.ok()) {
      EXPECT_EQ(present.count(tok), 1u)
          << "acknowledged " << tok << " lost: [" << server_data << "]";
    } else if (st.code() == StatusCode::kResourceExhausted) {
      // Explicit admission refusal: refused before logging, never executed,
      // and never the silent-shed message reserved for background work.
      EXPECT_EQ(st.message().find("shed"), std::string::npos)
          << "durable op shed: " << st.message();
      EXPECT_EQ(present.count(tok), 0u)
          << "refused " << tok << " executed anyway";
    }
  }

  // The scenario actually generated overload pressure.
  const QrpcClientStats qstats = client->qrpc()->stats();
  const AccessManagerStats astats = client->access()->stats();
  EXPECT_GT(sched.messages_shed + sched.enqueue_rejected +
                qstats.admission_rejected + qstats.background_shed +
                astats.prefetches_shed + astats.degraded_entered +
                bed.server()->qrpc()->stats().requests_rejected,
            0u);

  // 4. Drained and convergent after the pressure lifted.
  EXPECT_EQ(client->qrpc()->LogDepth(), 0u);
  EXPECT_EQ(client->qrpc()->PendingCount(), 0u);
  EXPECT_FALSE(client->access()->Degraded());
  ImportOptions iopts;
  iopts.allow_cached = false;
  auto converge = client->access()->Import("journal", iopts);
  ASSERT_TRUE(converge.Wait(bed.loop()));
  ASSERT_TRUE(converge.value().status.ok());
  EXPECT_EQ(*client->access()->ReadCommittedData("journal"), server_data);

  simcheck.CheckQuiesced();
  EXPECT_TRUE(simcheck.ok()) << simcheck.Report() << simcheck.TraceTail(150);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverloadChaosTest,
                         ::testing::ValuesIn(OverloadSeeds()));

}  // namespace
}  // namespace rover
