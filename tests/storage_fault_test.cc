// Storage fault-tolerance tests for the fault-injectable stable device.
//
// Part 1 exercises StableLog + StableDevice directly: bounded retry of
// transient write errors, terminal flush failure once the budget is
// exhausted, ENOSPC refusal and recovery, fail-stop on permanent sync
// failure, and the torn-tail / interior-corruption split (quarantine vs
// silent truncation) at recovery and scrub time.
// Part 2 runs the client-node policies on a Testbed: a terminally failed
// flush fails the call (never acks), a full device refuses admission until
// truncation frees space, a dead sync fail-stops the node, and a recovery
// quarantine marks cached imports stale.
// Part 3 covers the server WAL: ENOSPC degradation + forced-compaction
// reclaim, fail-stop on a terminally failed response-journal flush, and
// interior rot quarantined at recovery and scrub.
// Part 4 is seeded chaos: random disk faults layered over crash-restarts
// and link flaps, with SimCheck attached.
// Part 5 is the checker meta-test: the re-introduced ack-after-failed-flush
// bug must be caught by the fuzzer and shrunk to its disk-fault kernel.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/check/fuzz.h"
#include "src/check/simcheck.h"
#include "src/core/fault_plan.h"
#include "src/core/toolkit.h"
#include "src/qrpc/stable_log.h"
#include "src/sim/connectivity.h"
#include "src/store/server_store.h"
#include "src/tclite/value.h"
#include "src/util/status.h"

namespace rover {
namespace {

constexpr char kCounterCode[] = R"(
proc get {} { global state; return $state }
proc add {n} { global state; set state [expr {$state + $n}]; return $state }
)";

constexpr char kJournalCode[] = R"(
proc get {} { global state; return $state }
proc add {t} { global state; lappend state $t; return $state }
)";

TimePoint At(double seconds) {
  return TimePoint::Epoch() + Duration::Seconds(seconds);
}

// --- Part 1: StableLog + StableDevice --------------------------------------

TEST(StableDeviceTest, TransientFlushErrorsRetriedWithinBudget) {
  EventLoop loop;
  StableLog log(&loop);
  log.device()->InjectTransientWriteErrors(2);
  const uint64_t id = log.Append(BytesFromString("record"));

  Status outcome = UnavailableError("callback never ran");
  log.Flush([&outcome](const Status& s) { outcome = s; });
  loop.Run();

  EXPECT_TRUE(outcome.ok()) << outcome.message();
  ASSERT_NE(log.FindRecord(id), nullptr);
  EXPECT_TRUE(log.FindRecord(id)->durable);
  EXPECT_EQ(log.stats().flush_transient_errors, 2u);
  EXPECT_EQ(log.stats().flush_retries, 2u);
  EXPECT_EQ(log.stats().flush_failures, 0u);
  EXPECT_EQ(log.device()->stats().transient_errors, 2u);
}

TEST(StableDeviceTest, FlushFailsTerminallyOnceRetryBudgetExhausted) {
  EventLoop loop;
  StableLogCostModel costs;
  ASSERT_EQ(costs.flush_max_retries, 4u);  // budget: 1 initial + 4 retries
  StableLog log(&loop, costs);
  log.device()->InjectTransientWriteErrors(5);
  const uint64_t id = log.Append(BytesFromString("doomed"));

  Status outcome = Status::Ok();
  log.Flush([&outcome](const Status& s) { outcome = s; });
  loop.Run();

  EXPECT_EQ(outcome.code(), StatusCode::kUnavailable);
  ASSERT_NE(log.FindRecord(id), nullptr);
  EXPECT_FALSE(log.FindRecord(id)->durable);  // never acked durable
  EXPECT_EQ(log.stats().flush_retries, 4u);
  EXPECT_EQ(log.stats().flush_failures, 1u);

  // The device is healthy again (forced errors consumed): the next flush
  // makes the same record durable.
  Status retried = UnavailableError("callback never ran");
  log.Flush([&retried](const Status& s) { retried = s; });
  loop.Run();
  EXPECT_TRUE(retried.ok());
  EXPECT_TRUE(log.FindRecord(id)->durable);
}

TEST(StableDeviceTest, FullDeviceRefusesFlushUntilSpaceFrees) {
  EventLoop loop;
  StableLog log(&loop);
  log.device()->SetCapacityBytes(16);
  log.Append(Bytes(64));
  EXPECT_FALSE(log.HasSpaceFor(1));

  Status outcome = Status::Ok();
  log.Flush([&outcome](const Status& s) { outcome = s; });
  loop.Run();
  EXPECT_EQ(outcome.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(log.stats().flush_enospc, 1u);

  log.device()->SetCapacityBytes(0);  // operator frees space
  Status retried = UnavailableError("callback never ran");
  log.Flush([&retried](const Status& s) { retried = s; });
  loop.Run();
  EXPECT_TRUE(retried.ok());
  EXPECT_TRUE(log.FullyDurable());
}

TEST(StableDeviceTest, PermanentSyncFailureIsFailStop) {
  EventLoop loop;
  StableLog log(&loop);
  int fail_stops = 0;
  log.SetFailStopHandler([&fail_stops] { ++fail_stops; });
  log.device()->FailSyncPermanently();
  log.Append(BytesFromString("never-durable"));

  Status outcome = Status::Ok();
  log.Flush([&outcome](const Status& s) { outcome = s; });
  loop.Run();
  EXPECT_EQ(outcome.code(), StatusCode::kDataLoss);
  EXPECT_EQ(fail_stops, 1);
  EXPECT_TRUE(log.device()->sync_failed());
  EXPECT_EQ(log.stats().flush_sync_failures, 1u);

  // Operator swaps the device: flushes work again.
  log.device()->Repair();
  Status retried = UnavailableError("callback never ran");
  log.Flush([&retried](const Status& s) { retried = s; });
  loop.Run();
  EXPECT_TRUE(retried.ok());
}

TEST(StableDeviceTest, TornTailStillTruncatesSilently) {
  EventLoop loop;
  StableLog log(&loop);
  log.Append(BytesFromString("first"));
  log.Append(BytesFromString("second"));
  log.Flush(nullptr);
  loop.Run();

  log.SimulateCrash(/*tear_last_record=*/true);
  const StableLog::RecoveryReport report = log.RecoverWithReport();
  EXPECT_EQ(report.valid, 1u);
  EXPECT_EQ(report.torn_tail_dropped, 1u);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_EQ(log.stats().torn_tail_records_dropped, 1u);
  EXPECT_EQ(log.stats().records_quarantined, 0u);
}

// Regression for the copy bug the zero-copy refactor exposed: the WAL
// retains appended payloads by refcount, so simulated device corruption
// (bit rot, torn writes) mutating a record in place would silently damage
// the application's own in-RAM copy of the same bytes -- an in-flight
// message or a cached response. MutableData() is copy-on-write: the damage
// must land in a private detached copy.
TEST(StableDeviceTest, BitRotNeverDamagesSharedInRamPayload) {
  EventLoop loop;
  StableLog log(&loop);
  const std::string text = "the application still holds this payload";
  Buffer payload(BytesFromString(text));
  Buffer app_copy = payload;  // the app's handle, e.g. an in-flight message
  const uint64_t id = log.Append(payload);
  log.Flush(nullptr);
  loop.Run();
  const StableLog::Record* rec = log.FindRecord(id);
  ASSERT_NE(rec, nullptr);
  ASSERT_TRUE(rec->data.SharesStorageWith(app_copy));  // zero-copy retention

  ASSERT_EQ(log.InjectBitRot(/*selector=*/0), id);
  // The record is damaged (CRC catches it at read time)...
  EXPECT_EQ(log.RecordPayload(*log.FindRecord(id)).status().code(),
            StatusCode::kDataLoss);
  // ...but both application handles still read the original bytes.
  EXPECT_EQ(app_copy.view(), text);
  EXPECT_EQ(payload.view(), text);
}

TEST(StableDeviceTest, InteriorCorruptionQuarantinedOnRecovery) {
  EventLoop loop;
  StableLog log(&loop);
  log.Append(BytesFromString("aaaa"));
  log.Append(BytesFromString("bbbb"));
  log.Append(BytesFromString("cccc"));
  log.Flush(nullptr);
  loop.Run();

  const uint64_t rotted = log.InjectBitRot(/*selector=*/1);
  ASSERT_NE(rotted, 0u);
  log.SimulateCrash(/*tear_last_record=*/false);
  const StableLog::RecoveryReport report = log.RecoverWithReport();
  EXPECT_EQ(report.valid, 2u);
  EXPECT_EQ(report.torn_tail_dropped, 0u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0], rotted);
  EXPECT_EQ(log.FindRecord(rotted), nullptr);
  EXPECT_EQ(log.stats().records_quarantined, 1u);
}

TEST(StableDeviceTest, ScrubQuarantinesRotBeforeItSurfacesAtRecovery) {
  EventLoop loop;
  StableLog log(&loop);
  log.Append(BytesFromString("aaaa"));
  log.Append(BytesFromString("bbbb"));
  log.Append(BytesFromString("cccc"));
  log.Flush(nullptr);
  loop.Run();

  const size_t used_before = log.device()->used_bytes();
  const uint64_t rotted = log.InjectBitRot(/*selector=*/0);
  ASSERT_NE(rotted, 0u);
  const StableLog::ScrubReport report = log.Scrub();
  EXPECT_EQ(report.scanned, 3u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0], rotted);
  EXPECT_EQ(log.RecordCount(), 2u);
  // Quarantine returns the record's bytes to the device's free pool.
  EXPECT_LT(log.device()->used_bytes(), used_before);
  // A second scrub finds nothing new.
  EXPECT_TRUE(log.Scrub().quarantined.empty());
}

// --- Part 2: client-node policies ------------------------------------------

TEST(StorageFaultClientTest, TerminalFlushFailureFailsCallWithoutAck) {
  Testbed bed;
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());
  RoverClientNode* m = bed.AddClient("mobile", LinkProfile::WaveLan2());

  Promise<InvokeResult> doomed;
  bed.loop()->ScheduleAt(At(1), [&] {
    m->log()->device()->InjectTransientWriteErrors(5);
    InvokeOptions io;
    io.force_site = ExecutionSite::kServer;
    doomed = m->access()->Invoke("journal", "add", {"tok-doomed"}, io);
  });
  bed.Run();

  ASSERT_TRUE(doomed.ready());
  EXPECT_EQ(doomed.value().status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(m->qrpc()->LogDepth(), 0u);      // failed record withdrawn
  EXPECT_EQ(m->qrpc()->PendingCount(), 0u);
  EXPECT_EQ(m->qrpc()->stats().storage_flush_failures, 1u);
  EXPECT_EQ(m->storage_fail_stops(), 0u);    // transient exhaustion != fail-stop
  // The call never executed: its token must not be on the server.
  EXPECT_EQ(bed.server()->store()->Get("journal")->data, "");

  // The device is healthy again; the next call goes through.
  InvokeOptions io;
  io.force_site = ExecutionSite::kServer;
  auto ok = m->access()->Invoke("journal", "add", {"tok-ok"}, io);
  ASSERT_TRUE(ok.Wait(bed.loop()));
  EXPECT_TRUE(ok.value().status.ok());
  EXPECT_EQ(bed.server()->store()->Get("journal")->data, "tok-ok");
}

TEST(StorageFaultClientTest, FullDeviceRefusesAdmissionUntilTruncationFrees) {
  Testbed bed;
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());
  ClientNodeOptions copts;
  copts.disk_faults.capacity_bytes = 300;
  RoverClientNode* m = bed.AddClient("mobile", LinkProfile::WaveLan2(),
                                     /*schedule=*/nullptr, copts);

  constexpr int kCalls = 6;
  std::vector<Promise<InvokeResult>> results(kCalls);
  bool degraded_while_full = false;
  bed.loop()->ScheduleAt(At(1), [&] {
    InvokeOptions io;
    io.force_site = ExecutionSite::kServer;
    for (int i = 0; i < kCalls; ++i) {
      // Oversized tokens: each logged record exceeds a third of the device,
      // so the burst must trip the admission check.
      results[i] = m->access()->Invoke(
          "journal", "add", {std::string(120, 'a' + i)}, io);
    }
    degraded_while_full = m->qrpc()->StorageDegraded();
  });
  bed.Run();

  int refused = 0;
  int succeeded = 0;
  for (auto& r : results) {
    ASSERT_TRUE(r.ready());
    if (r.value().status.ok()) {
      ++succeeded;
    } else if (r.value().status.code() == StatusCode::kResourceExhausted) {
      ++refused;
    }
  }
  EXPECT_GE(refused, 1);
  EXPECT_GE(succeeded, 1);
  EXPECT_TRUE(degraded_while_full);
  EXPECT_GE(m->qrpc()->stats().storage_refused, 1u);

  // Responses drained the log, truncation freed device space, and the
  // degraded mode cleared on its own: new durable calls are admitted again.
  EXPECT_FALSE(m->qrpc()->StorageDegraded());
  InvokeOptions io;
  io.force_site = ExecutionSite::kServer;
  auto after = m->access()->Invoke("journal", "add", {"post-recovery"}, io);
  ASSERT_TRUE(after.Wait(bed.loop()));
  EXPECT_TRUE(after.value().status.ok());
}

TEST(StorageFaultClientTest, SyncFailureFailStopsNodeAndRepairsOnRestart) {
  Testbed bed;
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());
  RoverClientNode* m = bed.AddClient("mobile", LinkProfile::WaveLan2());

  bed.loop()->ScheduleAt(At(1), [&] {
    m->log()->device()->FailSyncPermanently();
    InvokeOptions io;
    io.force_site = ExecutionSite::kServer;
    m->access()->Invoke("journal", "add", {"lost-to-dead-disk"}, io);
  });
  bed.Run();

  EXPECT_EQ(m->storage_fail_stops(), 1u);
  EXPECT_FALSE(m->log()->device()->sync_failed());  // replaced during reboot
  EXPECT_EQ(m->qrpc()->LogDepth(), 0u);

  // The replacement device backs durable calls again.
  InvokeOptions io;
  io.force_site = ExecutionSite::kServer;
  auto after = m->access()->Invoke("journal", "add", {"tok-after"}, io);
  ASSERT_TRUE(after.Wait(bed.loop()));
  EXPECT_TRUE(after.value().status.ok());
  EXPECT_EQ(bed.server()->store()->Get("journal")->data, "tok-after");
}

TEST(StorageFaultClientTest, RecoveryQuarantineMarksCachedImportsStale) {
  Testbed bed;
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("doc", "lww", kCounterCode, "5")).ok());
  // Link up for the first 10s, down for 10s, then up for good: calls issued
  // in the gap stay durable-but-unanswered across the crash.
  auto schedule = std::make_unique<IntervalConnectivity>(
      std::vector<IntervalConnectivity::Interval>{{At(0), At(10)},
                                                  {At(20), At(10'000)}});
  RoverClientNode* m =
      bed.AddClient("mobile", LinkProfile::WaveLan2(), std::move(schedule));

  bed.loop()->ScheduleAt(At(1), [&] { m->access()->Import("doc"); });
  bed.loop()->ScheduleAt(At(12), [&] {
    InvokeOptions io;
    io.force_site = ExecutionSite::kServer;
    m->access()->Invoke("journal", "add", {"late-a"}, io);
    m->access()->Invoke("journal", "add", {"late-b"}, io);
  });
  uint64_t rotted = 0;
  bed.loop()->ScheduleAt(At(14), [&] { rotted = m->log()->InjectBitRot(3); });
  bed.loop()->ScheduleAt(At(15), [&] { m->SimulateCrashAndRestart(false); });
  bed.Run();

  ASSERT_NE(rotted, 0u);  // the interior record (late-a) was damaged
  EXPECT_EQ(m->log()->stats().records_quarantined, 1u);
  // The quarantine conservatively invalidated every cached import.
  EXPECT_GE(m->access()->stats().storage_stale_marks, 1u);
  // The surviving record was resent once the link returned; the quarantined
  // one is honestly lost (its call never acked OK to the application).
  const std::string journal = bed.server()->store()->Get("journal")->data;
  EXPECT_EQ(journal, "late-b");
  EXPECT_EQ(m->qrpc()->LogDepth(), 0u);

  ImportOptions iopts;
  iopts.allow_cached = false;
  auto converge = m->access()->Import("doc", iopts);
  ASSERT_TRUE(converge.Wait(bed.loop()));
  ASSERT_TRUE(converge.value().status.ok());
  EXPECT_EQ(*m->access()->ReadCommittedData("doc"), "5");
}

// --- Part 3: server WAL policies -------------------------------------------

TEST(StorageFaultServerTest, WalEnospcDegradesThenCompactionRecovers) {
  Testbed::Options topts;
  topts.server.stable_store.wal_costs = {Duration::Millis(2), 2e6,
                                         /*group_commit=*/true};
  // Small journal device, compaction only via the ENOSPC reclaim path.
  topts.server.stable_store.wal_disk_faults.capacity_bytes = 700;
  topts.server.stable_store.compact_after_records = 1000;
  Testbed bed(topts);
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());
  RoverClientNode* m = bed.AddClient("mobile", LinkProfile::WaveLan2());

  constexpr int kTokens = 8;
  std::vector<Promise<InvokeResult>> results(kTokens);
  for (int i = 0; i < kTokens; ++i) {
    bed.loop()->ScheduleAt(At(1 + 0.8 * i), [&results, m, i] {
      InvokeOptions io;
      io.force_site = ExecutionSite::kServer;
      results[i] = m->access()->Invoke("journal", "add",
                                       {"tok" + std::to_string(i)}, io);
    });
  }
  bed.Run();

  const RoverServerStats& stats = bed.server()->rover()->stats();
  EXPECT_GE(stats.wal_space_exhausted, 1u);
  EXPECT_GE(stats.wal_compactions_forced, 1u);
  EXPECT_GE(stats.wal_space_recoveries, 1u);
  EXPECT_FALSE(bed.server()->rover()->WalSpaceDegraded());
  EXPECT_EQ(bed.server()->storage_fail_stops(), 0u);

  // Every call eventually resolved OK (degradation pushed back, never lost),
  // and each token executed exactly once.
  for (int i = 0; i < kTokens; ++i) {
    ASSERT_TRUE(results[i].ready()) << "tok" << i;
    EXPECT_TRUE(results[i].value().status.ok())
        << "tok" << i << ": " << results[i].value().status.message();
  }
  auto tokens = TclListSplit(bed.server()->store()->Get("journal")->data);
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), static_cast<size_t>(kTokens));
  EXPECT_EQ(std::set<std::string>(tokens->begin(), tokens->end()).size(),
            tokens->size());
  EXPECT_EQ(m->qrpc()->LogDepth(), 0u);
}

TEST(StorageFaultServerTest, WalTerminalFlushFailureFailStopsServer) {
  Testbed bed;
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());
  RoverClientNode* m = bed.AddClient("mobile", LinkProfile::WaveLan2());
  const uint64_t epoch_before = bed.server()->stable_store()->epoch();

  bed.loop()->ScheduleAt(At(5), [&] {
    bed.server()->stable_store()->wal()->device()->InjectTransientWriteErrors(5);
    InvokeOptions io;
    io.force_site = ExecutionSite::kServer;
    m->access()->Invoke("journal", "add", {"tok-x"}, io);
  });
  // The journal flush fails terminally, the server fail-stops, and the
  // client's restart sweep resends the still-logged request against the
  // recovered incarnation.
  bed.loop()->ScheduleAt(At(10), [&] { m->SimulateCrashAndRestart(false); });
  bed.Run();

  EXPECT_EQ(bed.server()->storage_fail_stops(), 1u);
  EXPECT_EQ(bed.server()->stable_store()->epoch(), epoch_before + 1);
  // The re-execution is the only one that stuck: exactly one token copy.
  EXPECT_EQ(bed.server()->store()->Get("journal")->data, "tok-x");
  EXPECT_EQ(m->qrpc()->LogDepth(), 0u);
  EXPECT_EQ(m->qrpc()->PendingCount(), 0u);
}

TEST(StorageFaultServerTest, WalInteriorRotQuarantinedOnRecovery) {
  EventLoop loop;
  ServerStableStore store(&loop);
  for (int i = 0; i < 3; ++i) {
    ServerTransaction txn;
    ReplayOp op;
    op.committed = MakeRdo("obj" + std::to_string(i), "lww", kCounterCode,
                           std::to_string(i));
    op.committed.version = 1;
    txn.ops.push_back(std::move(op));
    store.LogTransaction(txn);
  }
  store.Flush(nullptr);
  loop.Run();

  ASSERT_NE(store.wal()->InjectBitRot(/*selector=*/2), 0u);
  store.SimulateCrash(false);
  RecoveredServerState rec = store.Recover();
  EXPECT_EQ(rec.interior_quarantined, 1u);
  EXPECT_EQ(rec.records_dropped, 0u);  // not a torn tail
  EXPECT_EQ(rec.wal.size(), 2u);       // the intact transactions replay
}

TEST(StorageFaultServerTest, ScrubResnapshotsAroundQuarantinedWalRecords) {
  Testbed bed;
  for (const char* name : {"a", "b", "c"}) {
    ASSERT_TRUE(bed.server()->rover()->CreateObject(
        MakeRdo(name, "lww", kCounterCode, name)).ok());
  }
  bed.Run();  // journal flushes settle

  ASSERT_NE(bed.server()->stable_store()->wal()->InjectBitRot(1), 0u);
  EXPECT_EQ(bed.server()->ScrubStorage(), 1u);
  bed.Run();  // forced snapshot covers the hole

  // After a crash, recovery comes from the scrub snapshot: nothing lost.
  bed.server()->SimulateCrashAndRestart(false);
  for (const char* name : {"a", "b", "c"}) {
    auto obj = bed.server()->store()->Get(name);
    ASSERT_TRUE(obj.ok()) << name;
    EXPECT_EQ(obj->data, name);
  }
}

// scrub_interval turns the recovery-time rot check into a background
// patrol: the timer finds the damaged WAL record between crashes, counts
// the run and the quarantine, and the forced snapshot covers the hole long
// before the next recovery would have tripped over it.
TEST(StorageFaultServerTest, PeriodicScrubTimerQuarantinesRotBetweenCrashes) {
  Testbed::Options topts;
  topts.server.scrub_interval = Duration::Seconds(5);
  Testbed bed(topts);
  for (const char* name : {"a", "b", "c"}) {
    ASSERT_TRUE(bed.server()->rover()->CreateObject(
        MakeRdo(name, "lww", kCounterCode, name)).ok());
  }
  bed.loop()->RunUntil(At(1));  // journal flushes settle
  ASSERT_NE(bed.server()->stable_store()->wal()->InjectBitRot(1), 0u);

  // The timer re-arms itself, so drive the loop by horizon rather than to
  // quiescence: three periods pass, the first one after the rot finds it.
  bed.loop()->RunUntil(At(16));
  EXPECT_GE(bed.server()->metrics()->counter("storage_scrub.runs")->value(), 3u);
  EXPECT_EQ(bed.server()->metrics()->counter("storage_scrub.quarantined")->value(),
            1u);

  bed.server()->SimulateCrashAndRestart(false);
  for (const char* name : {"a", "b", "c"}) {
    auto obj = bed.server()->store()->Get(name);
    ASSERT_TRUE(obj.ok()) << name;
    EXPECT_EQ(obj->data, name);
  }
}

// The client-side periodic scrub fails a rotted durable call loudly (the
// record can no longer be replayed faithfully) and conservatively marks
// cached imports stale -- all without waiting for a crash-recovery cycle.
TEST(StorageFaultClientTest, PeriodicScrubFailsRottedCallWithoutCrash) {
  Testbed bed;
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());
  // Link up for the first 10s, down for 10s, then up for good: calls issued
  // in the gap sit durably in the log where the rot can reach them.
  auto schedule = std::make_unique<IntervalConnectivity>(
      std::vector<IntervalConnectivity::Interval>{{At(0), At(10)},
                                                  {At(20), At(10'000)}});
  ClientNodeOptions copts;
  copts.scrub_interval = Duration::Seconds(3);
  RoverClientNode* m = bed.AddClient("mobile", LinkProfile::WaveLan2(),
                                     std::move(schedule), copts);

  // A cached import gives the conservative stale-mark something to mark.
  bed.loop()->ScheduleAt(At(1), [&] { m->access()->Import("journal"); });
  bed.loop()->ScheduleAt(At(12), [&] {
    InvokeOptions io;
    io.force_site = ExecutionSite::kServer;
    m->access()->Invoke("journal", "add", {"late-a"}, io);
    m->access()->Invoke("journal", "add", {"late-b"}, io);
  });
  uint64_t rotted = 0;
  bed.loop()->ScheduleAt(At(14), [&] { rotted = m->log()->InjectBitRot(3); });
  bed.loop()->RunUntil(At(40));

  ASSERT_NE(rotted, 0u);  // the interior record (late-a) was damaged
  EXPECT_GE(m->metrics()->counter("storage_scrub.runs")->value(), 4u);
  EXPECT_EQ(m->metrics()->counter("storage_scrub.quarantined")->value(), 1u);
  EXPECT_GE(m->access()->stats().storage_stale_marks, 1u);
  // The intact record was resent once the link returned; the quarantined
  // call failed loudly instead of acking data it cannot replay.
  EXPECT_EQ(bed.server()->store()->Get("journal")->data, "late-b");
  EXPECT_EQ(m->qrpc()->LogDepth(), 0u);
}

// --- Part 4: seeded chaos with disk faults ----------------------------------

// Random storage faults (write-error bursts, bounded disk-full episodes,
// client bit rot) layered over crash-restarts and link flaps. Whatever the
// seed: at-most-once execution, no phantom tokens, acknowledged work
// durable, logs drained, convergence -- with SimCheck attached throughout.
// (Server bit rot is exercised deterministically in Part 3: a quarantined
// WAL record is *detected* loss, which this harness's acked-loss check
// cannot tell apart from silent loss.)
class StorageChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StorageChaosTest, InvariantsHoldUnderDiskFaultsCrashesAndFlaps) {
  Testbed::Options topts;
  topts.server.stable_store.wal_costs = {Duration::Millis(5), 2e6,
                                         /*group_commit=*/true};
  topts.server.stable_store.compact_after_records = 8;
  Testbed bed(topts);
  bed.loop()->set_event_limit(20'000'000);

  check::SimCheck simcheck;
  simcheck.Attach(&bed);
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());

  FaultPlan plan(bed.loop(), GetParam());
  LinkProfile wave = LinkProfile::WaveLan2();
  wave.duplicate_prob = 0.05;
  RoverClientNode* client = bed.AddClient(
      "mobile", wave,
      plan.FlappyConnectivity(Duration::Seconds(8), Duration::Seconds(4),
                              Duration::Seconds(60)));

  constexpr int kTokens = 10;
  std::vector<Promise<InvokeResult>> results(kTokens);
  for (int i = 0; i < kTokens; ++i) {
    bed.loop()->ScheduleAt(At(2 + 4 * i), [&results, client, i] {
      InvokeOptions io;
      io.force_site = ExecutionSite::kServer;
      results[i] = client->access()->Invoke("journal", "add",
                                            {"tok" + std::to_string(i)}, io);
    });
  }

  RandomFaultOptions fopts;
  fopts.horizon = Duration::Seconds(45);
  fopts.server_crashes = 1;
  fopts.client_crashes = 1;
  fopts.tear_probability = 0.5;
  plan.ScheduleRandomFaults(bed.server(), {client}, fopts);

  DiskFaultScheduleOptions dopts;
  dopts.horizon = Duration::Seconds(45);
  dopts.transient_bursts = 2;
  dopts.disk_full_episodes = 1;
  dopts.bitrot_injections = 1;
  plan.ScheduleRandomDiskFaults(/*server=*/nullptr, {client}, dopts);
  DiskFaultScheduleOptions server_dopts = dopts;
  server_dopts.bitrot_injections = 0;  // see class comment
  plan.ScheduleRandomDiskFaults(bed.server(), {}, server_dopts);

  // The fault window closes at 60s: heal every device (mirrors the fuzzer's
  // safety net -- an unconsumed error burst would otherwise fail the final
  // convergence import as a scheduling artifact), then one last client
  // restart resends every durable unanswered request.
  bed.loop()->ScheduleAt(At(60), [&] {
    client->log()->device()->Repair();
    client->log()->device()->SetCapacityBytes(0);
    bed.server()->stable_store()->wal()->device()->Repair();
    bed.server()->stable_store()->wal()->device()->SetCapacityBytes(0);
  });
  plan.CrashClientAt(client, At(61));
  bed.Run();

  EXPECT_GT(plan.disk_faults_injected(), 0u);
  const std::string server_data = bed.server()->store()->Get("journal")->data;
  auto tokens = TclListSplit(server_data);
  ASSERT_TRUE(tokens.ok());
  std::set<std::string> unique(tokens->begin(), tokens->end());
  EXPECT_EQ(unique.size(), tokens->size())
      << "an add executed twice: [" << server_data << "]";
  std::set<std::string> issued;
  for (int i = 0; i < kTokens; ++i) {
    issued.insert("tok" + std::to_string(i));
  }
  for (const std::string& tok : *tokens) {
    EXPECT_EQ(issued.count(tok), 1u) << "unknown token " << tok;
  }
  for (int i = 0; i < kTokens; ++i) {
    if (results[i].ready() && results[i].value().status.ok()) {
      EXPECT_EQ(unique.count("tok" + std::to_string(i)), 1u)
          << "acknowledged tok" << i << " lost: [" << server_data << "]";
    }
  }
  EXPECT_EQ(client->qrpc()->LogDepth(), 0u);
  EXPECT_EQ(client->qrpc()->PendingCount(), 0u);
  // Every epoch bump is one recovery: planned crashes plus storage
  // fail-stops (terminal journal-flush failures force a crash-restart).
  EXPECT_EQ(bed.server()->stable_store()->epoch(),
            1 + plan.server_crashes_executed() +
                bed.server()->storage_fail_stops());

  ImportOptions iopts;
  iopts.allow_cached = false;
  auto converge = client->access()->Import("journal", iopts);
  ASSERT_TRUE(converge.Wait(bed.loop()));
  ASSERT_TRUE(converge.value().status.ok());
  EXPECT_EQ(*client->access()->ReadCommittedData("journal"), server_data);

  simcheck.CheckQuiesced();
  EXPECT_TRUE(simcheck.ok()) << simcheck.Report() << simcheck.TraceTail(150);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageChaosTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

// --- Part 5: checker meta-test ----------------------------------------------

// Re-introduce the ack-after-failed-flush bug (durability acknowledged for a
// record whose flush terminally failed) and demonstrate the full loop: the
// no-ack-without-durability invariant catches it under a disk-fault
// schedule, greedy shrinking reduces the plan to its write-error kernel,
// and the repro line replays both ways.
TEST(StorageFaultMetaTest, AckAfterFailedFlushBugCaughtAndShrunk) {
  check::FuzzRunOptions buggy;
  buggy.ack_after_failed_flush_bug = true;

  auto plan = check::ParseRepro(
      "SIMCHECK_REPRO seed=11 plan=burst@12000,client1-crash@18000,"
      "client2-disk-err@25000,server-crash@35000");
  ASSERT_TRUE(plan.ok()) << plan.status().message();
  check::FuzzOutcome broken = check::RunPlan(*plan, buggy);
  ASSERT_FALSE(broken.ok) << "ack-after-failed-flush bug went undetected";
  bool saw_bad_ack = false;
  for (const check::Violation& v : broken.violations) {
    saw_bad_ack |= v.invariant == "ack-after-failed-flush";
  }
  EXPECT_TRUE(saw_bad_ack) << broken.report;

  check::FuzzPlan shrunk = check::ShrinkPlan(*plan, buggy);
  EXPECT_LT(shrunk.actions.size(), plan->actions.size());
  EXPECT_LE(shrunk.actions.size(), 2u) << check::FormatRepro(shrunk);
  bool kept_disk_fault = false;
  for (const check::FuzzAction& a : shrunk.actions) {
    kept_disk_fault |= a.kind == check::FuzzActionKind::kDiskTransient;
  }
  EXPECT_TRUE(kept_disk_fault) << check::FormatRepro(shrunk);
  ASSERT_FALSE(check::RunPlan(shrunk, buggy).ok) << "shrunk plan no longer fails";

  // The minimized schedule round-trips through its one-line repro, still
  // bites with the bug in place, and passes on the fixed code.
  const std::string line = check::FormatRepro(shrunk);
  auto parsed = check::ParseRepro(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(check::FormatRepro(*parsed), line);
  EXPECT_FALSE(check::RunPlan(*parsed, buggy).ok);
  check::FuzzOutcome fixed = check::RunPlan(*parsed);
  EXPECT_TRUE(fixed.ok) << fixed.report;
}

// Disk-fault action tokens round-trip through the repro grammar.
TEST(StorageFaultReproTest, DiskFaultTokensRoundTrip) {
  const std::string line =
      "SIMCHECK_REPRO seed=3 "
      "plan=client1-disk-err@100,client2-disk-full@200,client2-disk-free@300,"
      "client1-disk-rot@400,server-disk-err@500,server-disk-full@600,"
      "server-disk-free@700,server-disk-syncfail@800";
  auto plan = check::ParseRepro(line);
  ASSERT_TRUE(plan.ok()) << plan.status().message();
  ASSERT_EQ(plan->actions.size(), 8u);
  EXPECT_EQ(plan->actions[0].kind, check::FuzzActionKind::kDiskTransient);
  EXPECT_EQ(plan->actions[0].target, 0);
  EXPECT_EQ(plan->actions[1].kind, check::FuzzActionKind::kDiskFull);
  EXPECT_EQ(plan->actions[1].target, 1);
  EXPECT_EQ(plan->actions[2].kind, check::FuzzActionKind::kDiskFree);
  EXPECT_EQ(plan->actions[3].kind, check::FuzzActionKind::kDiskRot);
  EXPECT_EQ(plan->actions[4].kind, check::FuzzActionKind::kDiskTransient);
  EXPECT_EQ(plan->actions[4].target, 2);
  EXPECT_EQ(plan->actions[7].kind, check::FuzzActionKind::kDiskSyncFail);
  EXPECT_EQ(plan->actions[7].target, 2);
  EXPECT_EQ(check::FormatRepro(*plan), line);
}

}  // namespace
}  // namespace rover
