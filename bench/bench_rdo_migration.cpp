// E4 -- RDO migration for interactive applications (paper §7 claim 4).
//
// "Migrating RDOs provides Rover applications with excellent performance
// over moderate bandwidth links (e.g., 14.4 Kbit/s dial-up lines) and in
// disconnected operation."
//
// Workload: an Ical-style interactive session -- 40 calendar operations
// (70% lookups, 30% bookings) with 500 ms of user think time between
// operations. Three placements:
//   * server   : every operation is an RPC (X-over-the-network style);
//   * client   : the calendar RDO is imported once, operations run
//                locally, one export commits at the end;
//   * adaptive : Rover's migration policy decides.
// The table reports total user-visible wait (excluding think time).

#include <cstdio>

#include "bench/bench_util.h"
#include <optional>

#include "src/apps/calendar.h"
#include "src/core/toolkit.h"

using namespace rover;

namespace {

struct SessionResult {
  double wait_s = 0;        // user-visible waiting, excluding think time
  double import_s = 0;      // one-time import cost (client/adaptive)
  bool completed = false;   // false when ops blocked forever (disconnected RPC)
  uint64_t local = 0;
  uint64_t remote = 0;
};

SessionResult RunSession(const LinkProfile* profile, MigrationPolicy::Mode mode,
                         bool disconnect_midway,
                         std::optional<ExecutionSite> force_site = std::nullopt) {
  Testbed bed;
  CreateCalendar(bed.server(), "adj");

  std::unique_ptr<ConnectivitySchedule> schedule;
  if (disconnect_midway) {
    schedule = std::make_unique<IntervalConnectivity>(
        std::vector<IntervalConnectivity::Interval>{
            {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(30)}});
  }
  ClientNodeOptions options;
  options.access.migration.mode = mode;
  RoverClientNode* client = bed.AddClient(
      "laptop", profile != nullptr ? *profile : LinkProfile::WaveLan2(),
      std::move(schedule), options);
  CalendarApp cal(bed.loop(), client, "adj");

  SessionResult result;
  const TimePoint import_start = bed.loop()->now();
  auto open = cal.Open();
  if (!open.Wait(bed.loop())) {
    return result;
  }
  result.import_s = (bed.loop()->now() - import_start).seconds();

  if (disconnect_midway) {
    bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(60));
  }

  Rng rng(11);
  const int kOps = 40;
  for (int i = 0; i < kOps; ++i) {
    const std::string slot = "day" + std::to_string(rng.NextBelow(7)) + "-slot" +
                             std::to_string(rng.NextBelow(16));
    const TimePoint start = bed.loop()->now();
    Promise<InvokeResult> op;
    if (force_site.has_value()) {
      InvokeOptions opts;
      opts.force_site = force_site;
      op = rng.NextBool(0.7)
               ? client->access()->Invoke(cal.object_name(), "lookup", {slot}, opts)
               : client->access()->Invoke(cal.object_name(), "book",
                                          {slot, "mtg-" + std::to_string(i)}, opts);
    } else {
      op = rng.NextBool(0.7) ? cal.Lookup(slot)
                             : cal.Book(slot, "mtg-" + std::to_string(i));
    }
    // An op that cannot complete (RPC while disconnected forever) would
    // hang; bound the wait.
    if (!op.WaitUntil(bed.loop(), start + Duration::Seconds(3600))) {
      return result;  // completed=false
    }
    if (!op.ready()) {
      return result;
    }
    result.wait_s += (bed.loop()->now() - start).seconds();
    bed.loop()->RunFor(Duration::Millis(500));  // think time
  }
  // Commit tentative bookings (not charged to interactive wait; it runs in
  // the background exactly as Rover intends).
  cal.Sync();
  bed.loop()->RunFor(Duration::Seconds(5));

  result.local = client->access()->stats().local_invokes;
  result.remote = client->access()->stats().remote_invokes;
  result.completed = true;
  return result;
}

}  // namespace

int main() {
  std::printf("E4: RDO migration for an interactive calendar (paper §7 claim 4)\n");
  std::printf("workload: 40 ops (70%% lookup / 30%% book), 500 ms think time\n");

  BenchTable table("Total user-visible wait for the session",
                   {"network", "exec at server", "exec at client (import+ops)",
                    "adaptive", "adaptive split (local/remote)"});
  for (const LinkProfile& profile : LinkProfile::PaperNetworks()) {
    SessionResult server = RunSession(&profile, MigrationPolicy::Mode::kAlwaysServer, false);
    SessionResult client = RunSession(&profile, MigrationPolicy::Mode::kAlwaysClient, false);
    SessionResult adaptive = RunSession(&profile, MigrationPolicy::Mode::kAdaptive, false);
    char client_cell[64];
    std::snprintf(client_cell, sizeof(client_cell), "%s (+%s import)",
                  FmtSeconds(client.wait_s).c_str(), FmtSeconds(client.import_s).c_str());
    char split[32];
    std::snprintf(split, sizeof(split), "%llu/%llu",
                  (unsigned long long)adaptive.local, (unsigned long long)adaptive.remote);
    table.AddRow({profile.name, FmtSeconds(server.wait_s), client_cell,
                  FmtSeconds(adaptive.wait_s), split});
  }
  table.Print();

  // Disconnection mid-session: import happens while connected, then the
  // network goes away for good at t=30s.
  BenchTable offline("Disconnection after 30 s (WaveLAN import window)",
                     {"placement", "session outcome", "user-visible wait"});
  for (auto site : {ExecutionSite::kServer, ExecutionSite::kClient}) {
    SessionResult r = RunSession(nullptr, MigrationPolicy::Mode::kAdaptive, true, site);
    offline.AddRow({ExecutionSiteName(site),
                    r.completed ? "completed" : "BLOCKED (ops wait for network)",
                    r.completed ? FmtSeconds(r.wait_s) : "-"});
  }
  offline.Print();

  std::printf(
      "\nShape check: server execution wins (slightly) on Ethernet; client\n"
      "execution wins decisively at 14.4/2.4 Kbit/s once the one-time\n"
      "import is amortized, and is the only placement that works\n"
      "disconnected. The adaptive policy tracks the better column.\n");
  return 0;
}
