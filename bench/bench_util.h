// Shared helpers for the experiment harnesses: fixed-width table output
// (one bench binary regenerates one paper table/figure) and small stat
// utilities. Every harness prints its experiment id, the workload
// parameters, and then rows shaped like the paper's.

#ifndef ROVER_BENCH_BENCH_UTIL_H_
#define ROVER_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

namespace rover {

class BenchTable {
 public:
  BenchTable(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    std::vector<size_t> widths(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) {
          widths[c] = std::max(widths[c], row[c].size());
        }
      }
    }
    std::printf("\n%s\n", title_.c_str());
    PrintRule(widths);
    PrintRow(columns_, widths);
    PrintRule(widths);
    for (const auto& row : rows_) {
      PrintRow(row, widths);
    }
    PrintRule(widths);
  }

 private:
  static void PrintRule(const std::vector<size_t>& widths) {
    std::printf("+");
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) {
        std::printf("-");
      }
      std::printf("+");
    }
    std::printf("\n");
  }

  static void PrintRow(const std::vector<std::string>& cells,
                       const std::vector<size_t>& widths) {
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  }

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string FmtSeconds(double s) {
  char buf[64];
  if (s >= 10) {
    std::snprintf(buf, sizeof(buf), "%.1f s", s);
  } else if (s >= 0.1) {
    std::snprintf(buf, sizeof(buf), "%.2f s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  }
  return buf;
}

inline std::string FmtRatio(double r) {
  char buf[64];
  if (r >= 100) {
    std::snprintf(buf, sizeof(buf), "%.0fx", r);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fx", r);
  }
  return buf;
}

inline std::string FmtPercent(double p) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", p * 100);
  return buf;
}

inline std::string FmtBytes(size_t b) {
  char buf[64];
  if (b >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", static_cast<double>(b) / (1024 * 1024));
  } else if (b >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", static_cast<double>(b) / 1024);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", b);
  }
  return buf;
}

inline std::string FmtCount(uint64_t n) { return std::to_string(n); }

inline double Mean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0;
  }
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

inline double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) {
    return 0;
  }
  std::sort(xs.begin(), xs.end());
  const double idx = p * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1 - frac) + xs[hi] * frac;
}

}  // namespace rover

#endif  // ROVER_BENCH_BENCH_UTIL_H_
