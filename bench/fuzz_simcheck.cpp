// SimCheck schedule fuzzer driver. Runs the seeded interleaving fuzzer
// over a seed corpus, and on the first failure prints the full violation
// report plus a minimized one-line reproducer, then exits nonzero.
//
// Usage:
//   fuzz_simcheck [seed...]            run the given seeds
//   fuzz_simcheck --repro '<line>'     replay a SIMCHECK_REPRO line
//   fuzz_simcheck --disk-faults [...]  mix storage faults into each plan
//   ROVER_SIMCHECK_SEEDS="1-64" fuzz_simcheck
//                                      seed ranges/lists via environment
//   ROVER_SIMCHECK_DISK_FAULTS=1       same as --disk-faults
// With no seeds given, runs the default corpus 1..24.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/check/fuzz.h"

namespace {

// Accepts "7", "1-64", and comma-separated mixes of both.
std::vector<uint64_t> ParseSeedSpec(const std::string& spec) {
  std::vector<uint64_t> seeds;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) {
      continue;
    }
    const size_t dash = item.find('-');
    if (dash == std::string::npos) {
      seeds.push_back(std::strtoull(item.c_str(), nullptr, 10));
    } else {
      const uint64_t lo = std::strtoull(item.substr(0, dash).c_str(), nullptr, 10);
      const uint64_t hi = std::strtoull(item.substr(dash + 1).c_str(), nullptr, 10);
      for (uint64_t s = lo; s <= hi; ++s) {
        seeds.push_back(s);
      }
    }
  }
  return seeds;
}

int ReplayRepro(const std::string& line) {
  auto plan = rover::check::ParseRepro(line);
  if (!plan.ok()) {
    std::fprintf(stderr, "bad repro line: %s\n", plan.status().message().c_str());
    return 2;
  }
  rover::check::FuzzOutcome outcome = rover::check::RunPlan(*plan);
  if (outcome.ok) {
    std::printf("repro passed (seed %llu, %zu actions)\n",
                static_cast<unsigned long long>(plan->seed), plan->actions.size());
    return 0;
  }
  std::printf("%s", outcome.report.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--repro") == 0) {
    return ReplayRepro(argv[2]);
  }

  rover::check::FuzzRunOptions run_options;
  rover::check::MakePlanOptions plan_options;
  std::vector<uint64_t> seeds;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--eager-bug") == 0) {
      // Re-introduce the known coalescing bug (checker self-test).
      run_options.eager_coalesce_bug = true;
      continue;
    }
    if (std::strcmp(argv[i], "--disk-faults") == 0) {
      plan_options.disk_faults = true;
      continue;
    }
    for (uint64_t s : ParseSeedSpec(argv[i])) {
      seeds.push_back(s);
    }
  }
  if (const char* env = std::getenv("ROVER_SIMCHECK_DISK_FAULTS")) {
    if (env[0] != '\0' && std::strcmp(env, "0") != 0) {
      plan_options.disk_faults = true;
    }
  }
  if (seeds.empty()) {
    if (const char* env = std::getenv("ROVER_SIMCHECK_SEEDS")) {
      seeds = ParseSeedSpec(env);
    }
  }
  if (seeds.empty()) {
    for (uint64_t s = 1; s <= 24; ++s) {
      seeds.push_back(s);
    }
  }

  for (uint64_t seed : seeds) {
    rover::check::FuzzPlan plan = rover::check::MakePlan(seed, plan_options);
    rover::check::FuzzOutcome outcome = rover::check::RunPlan(plan, run_options);
    if (outcome.ok) {
      std::printf("seed %-6llu ok    (%zu actions)\n",
                  static_cast<unsigned long long>(seed), plan.actions.size());
      continue;
    }
    std::printf("seed %-6llu FAIL\n%s", static_cast<unsigned long long>(seed),
                outcome.report.c_str());
    std::printf("shrinking...\n");
    rover::check::FuzzPlan shrunk = rover::check::ShrinkPlan(plan, run_options);
    rover::check::FuzzOutcome minimized = rover::check::RunPlan(shrunk, run_options);
    std::printf("%s\n", rover::check::FormatRepro(shrunk).c_str());
    if (!minimized.report.empty()) {
      std::printf("%s", minimized.report.c_str());
    }
    return 1;
  }
  std::printf("all %zu seeds clean\n", seeds.size());
  return 0;
}
