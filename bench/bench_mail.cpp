// E5 -- Rover Exmh mail session performance (paper §6.1 / §7).
//
// Workload: a folder of 30 messages (~2 KiB bodies). The session scans the
// folder, reads 10 messages, and sends 3 replies. Configurations:
//   * connected, no prefetch : every read is a fetch (vanilla IMAP-style);
//   * connected, prefetch    : folder prefetched after the scan;
//   * disconnected (prefetch + undock): reads from cache, sends queued.
// Reported: user-visible wait for reads, send call-return time, and when
// the replies actually reach the server.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/mail.h"
#include "src/core/toolkit.h"

using namespace rover;

namespace {

constexpr int kMessages = 30;
constexpr int kReads = 10;
constexpr int kReplies = 3;

void SeedInbox(Testbed* bed, MailService* service) {
  service->CreateFolder("inbox");
  Rng rng(5);
  for (int i = 0; i < kMessages; ++i) {
    MailMessage m;
    m.id = std::to_string(i);
    m.from = "user" + std::to_string(rng.NextBelow(8)) + "@lcs.mit.edu";
    m.to = "adj@lcs.mit.edu";
    m.subject = "message " + std::to_string(i);
    m.date = "1995-12-03";
    m.body.assign(1024 + rng.NextBelow(2048), 'm');
    service->DeliverLocal("inbox", m);
  }
}

struct MailResult {
  double scan_s = 0;
  double read_wait_s = 0;     // total over kReads
  double send_call_s = 0;     // call-return total over kReplies
  double send_arrival_s = 0;  // when the last reply reached the server (abs time)
  bool reads_offline = false;
};

MailResult RunSession(const LinkProfile& profile, bool prefetch, bool undock) {
  Testbed bed;
  MailService service(bed.server());
  SeedInbox(&bed, &service);

  std::unique_ptr<ConnectivitySchedule> schedule;
  if (undock) {
    // Docked for 10 minutes, gone until t=2h, then reconnected.
    schedule = std::make_unique<IntervalConnectivity>(
        std::vector<IntervalConnectivity::Interval>{
            {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(600)},
            {TimePoint::Epoch() + Duration::Seconds(7200),
             TimePoint::Epoch() + Duration::Seconds(1e7)}});
  }
  RoverClientNode* client = bed.AddClient("laptop", profile, std::move(schedule));
  MailReader reader(bed.loop(), client);

  MailResult result;
  const TimePoint scan_start = bed.loop()->now();
  auto folder = reader.OpenFolder("inbox");
  folder.Wait(bed.loop());
  result.scan_s = (bed.loop()->now() - scan_start).seconds();

  if (prefetch) {
    reader.PrefetchFolder("inbox");
    if (undock) {
      bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(590));
    } else {
      // Let the prefetch finish in the background before reading.
      bed.loop()->RunFor(Duration::Seconds(600));
    }
  }
  if (undock) {
    bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(700));
    result.reads_offline = !client->access()->Connected();
  }

  Rng rng(3);
  for (int i = 0; i < kReads; ++i) {
    const std::string id = std::to_string(rng.NextBelow(kMessages));
    const TimePoint start = bed.loop()->now();
    auto body = reader.ReadMessage("inbox", id);
    body.Wait(bed.loop());
    result.read_wait_s += (bed.loop()->now() - start).seconds();
    bed.loop()->RunFor(Duration::Seconds(20));  // reading time
  }

  std::vector<QrpcCall> sends;
  for (int i = 0; i < kReplies; ++i) {
    MailMessage reply;
    reply.id = "reply-" + std::to_string(i);
    reply.from = "adj@lcs.mit.edu";
    reply.to = "peer@lcs.mit.edu";
    reply.subject = "Re: message";
    reply.body.assign(1500, 'r');
    const TimePoint start = bed.loop()->now();
    sends.push_back(reader.Send("peer-inbox", reply));
    // Call-return: the user waits only for the stable-log commit, never
    // for the network.
    sends.back().committed.Wait(bed.loop());
    result.send_call_s += (bed.loop()->now() - start).seconds();
  }
  bed.Run();
  for (auto& send : sends) {
    if (send.result.ready() && send.result.value().status.ok()) {
      result.send_arrival_s =
          std::max(result.send_arrival_s, send.result.value().completed_at.seconds());
    }
  }
  return result;
}

}  // namespace

int main() {
  std::printf("E5: Rover Exmh mail session (paper §6.1)\n");
  std::printf("workload: scan 30-message folder, read %d, reply %d\n", kReads, kReplies);

  BenchTable table("Connected session, per network",
                   {"network", "scan", "reads (no prefetch)", "reads (prefetched)",
                    "send call-return"});
  for (const LinkProfile& profile : LinkProfile::PaperNetworks()) {
    MailResult plain = RunSession(profile, false, false);
    MailResult prefetched = RunSession(profile, true, false);
    table.AddRow({profile.name, FmtSeconds(plain.scan_s),
                  FmtSeconds(plain.read_wait_s), FmtSeconds(prefetched.read_wait_s),
                  FmtSeconds(plain.send_call_s)});
  }
  table.Print();

  BenchTable offline("Undocked session (prefetch on Ethernet, read on the train)",
                     {"metric", "value"});
  MailResult undocked = RunSession(LinkProfile::Ethernet10(), true, true);
  offline.AddRow({"reads executed offline", undocked.reads_offline ? "yes" : "no"});
  offline.AddRow({"total wait for 10 reads", FmtSeconds(undocked.read_wait_s)});
  offline.AddRow({"send call-return (3 replies)", FmtSeconds(undocked.send_call_s)});
  offline.AddRow({"replies reached server at", FmtSeconds(undocked.send_arrival_s)});
  offline.Print();

  std::printf(
      "\nShape check: prefetching collapses read latency to interpreter\n"
      "time on every network; disconnected reads match connected-Ethernet\n"
      "reads, and replies written on the train are delivered when the\n"
      "dial-up window opens (~2h), exactly the paper's usage story.\n");
  return 0;
}
