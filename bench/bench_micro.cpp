// E9 -- micro-benchmarks of the toolkit's building blocks (real CPU time,
// google-benchmark): TcLite dispatch and proc calls, expr evaluation, RDO
// load/invoke, wire marshalling, frame encode/decode, LZ compression, and
// stable-log append. These are the analogue of the paper's environment
// cost table and calibrate the simulated CPU cost models in RdoCostModel.

#include <benchmark/benchmark.h>

#include "src/qrpc/marshal.h"
#include "src/qrpc/stable_log.h"
#include "src/rdo/rdo.h"
#include "src/sim/event_loop.h"
#include "src/tclite/interp.h"
#include "src/sim/network.h"
#include "src/transport/message.h"
#include "src/transport/scheduler.h"
#include "src/transport/transport.h"
#include "src/util/buffer.h"
#include "src/util/compress.h"
#include "src/util/crc32.h"
#include "src/util/delta.h"

namespace rover {
namespace {

void BM_TcliteSetCommand(benchmark::State& state) {
  Interp interp;
  for (auto _ : state) {
    interp.ResetBudget();
    benchmark::DoNotOptimize(interp.Eval("set x 42"));
  }
}
BENCHMARK(BM_TcliteSetCommand);

void BM_TcliteProcCall(benchmark::State& state) {
  Interp interp;
  interp.Run("proc add {a b} { return [expr {$a + $b}] }");
  for (auto _ : state) {
    interp.ResetBudget();
    benchmark::DoNotOptimize(interp.Eval("add 17 25"));
  }
}
BENCHMARK(BM_TcliteProcCall);

void BM_TcliteExpr(benchmark::State& state) {
  Interp interp;
  interp.Run("set n 6");
  for (auto _ : state) {
    interp.ResetBudget();
    benchmark::DoNotOptimize(interp.Eval("expr {($n * 7 + 3) % 13 < 10 && $n > 2}"));
  }
}
BENCHMARK(BM_TcliteExpr);

void BM_TcliteLoop100(benchmark::State& state) {
  Interp interp;
  for (auto _ : state) {
    interp.ResetBudget();
    benchmark::DoNotOptimize(
        interp.Eval("for {set i 0} {$i < 100} {incr i} { set x $i }"));
  }
}
BENCHMARK(BM_TcliteLoop100);

void BM_TcliteListOps(benchmark::State& state) {
  Interp interp;
  interp.Run("set l {}; for {set i 0} {$i < 50} {incr i} { lappend l item$i }");
  for (auto _ : state) {
    interp.ResetBudget();
    benchmark::DoNotOptimize(interp.Eval("lsearch $l item25"));
  }
}
BENCHMARK(BM_TcliteListOps);

void BM_RdoLoad(benchmark::State& state) {
  RdoDescriptor d;
  d.name = "bench";
  d.type = "lww";
  d.code = R"(
proc get {} { global state; return $state }
proc add {n} { global state; set state [expr {$state + $n}]; return $state }
)";
  d.data = "0";
  RdoEnvironment env;
  env.host_name = "bench";
  for (auto _ : state) {
    auto instance = RdoInstance::Create(d, env);
    benchmark::DoNotOptimize(instance);
  }
}
BENCHMARK(BM_RdoLoad);

void BM_RdoInvoke(benchmark::State& state) {
  RdoDescriptor d;
  d.name = "bench";
  d.type = "lww";
  d.code = "proc add {n} { global state; set state [expr {$state + $n}]; return $state }";
  d.data = "0";
  RdoEnvironment env;
  env.host_name = "bench";
  auto instance = RdoInstance::Create(d, env);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*instance)->Invoke("add", {"1"}));
  }
}
BENCHMARK(BM_RdoInvoke);

void BM_MarshalRequest(benchmark::State& state) {
  RpcRequestBody body;
  body.method = "rover.invoke";
  body.args = {std::string("cal/adj"), std::string("book"),
               std::string("mon-10am {design review}")};
  for (auto _ : state) {
    benchmark::DoNotOptimize(body.Encode());
  }
}
BENCHMARK(BM_MarshalRequest);

void BM_UnmarshalRequest(benchmark::State& state) {
  RpcRequestBody body;
  body.method = "rover.invoke";
  body.args = {std::string("cal/adj"), std::string("book"),
               std::string("mon-10am {design review}")};
  const Bytes encoded = body.Encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RpcRequestBody::Decode(encoded));
  }
}
BENCHMARK(BM_UnmarshalRequest);

void BM_FrameEncode(benchmark::State& state) {
  std::vector<Message> msgs(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < msgs.size(); ++i) {
    msgs[i].header.message_id = i + 1;
    msgs[i].header.src = "mobile";
    msgs[i].header.dst = "server";
    msgs[i].payload = Bytes(256, 0x42);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeFrame(msgs));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(msgs.size() * 256));
}
BENCHMARK(BM_FrameEncode)->Arg(1)->Arg(16);

void BM_LzCompressText(benchmark::State& state) {
  std::string text;
  while (text.size() < static_cast<size_t>(state.range(0))) {
    text += "From: rover@lcs.mit.edu\nSubject: queued remote procedure call\n";
  }
  const Bytes input = BytesFromString(text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzCompress(input));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_LzCompressText)->Arg(4096)->Arg(65536);

void BM_LzDecompress(benchmark::State& state) {
  std::string text;
  while (text.size() < 65536) {
    text += "From: rover@lcs.mit.edu\nSubject: queued remote procedure call\n";
  }
  const Bytes packed = LzCompress(BytesFromString(text));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzDecompress(packed));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_LzDecompress);

void BM_Crc32(benchmark::State& state) {
  Bytes data(static_cast<size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(4096)->Arg(65536);

// Delta codec over a typical re-import: an 8 KiB object with a small edit.
void BM_DeltaEncode(benchmark::State& state) {
  Bytes base(8192);
  for (size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<uint8_t>('a' + (i * 31 % 17));
  }
  Bytes target = base;
  for (size_t i = 256; i < 384; ++i) {
    target[i] = static_cast<uint8_t>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeltaEncode(base, target));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(target.size()));
}
BENCHMARK(BM_DeltaEncode);

void BM_DeltaApply(benchmark::State& state) {
  Bytes base(8192);
  for (size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<uint8_t>('a' + (i * 31 % 17));
  }
  Bytes target = base;
  for (size_t i = 256; i < 384; ++i) {
    target[i] = static_cast<uint8_t>(i);
  }
  const Bytes delta = DeltaEncode(base, target);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeltaApply(base, delta));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(target.size()));
}
BENCHMARK(BM_DeltaApply);

void BM_StableLogAppend(benchmark::State& state) {
  EventLoop loop;
  StableLog log(&loop);
  const Bytes record(512, 0x33);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.Append(record));
    if (log.RecordCount() > 10000) {
      state.PauseTiming();
      log.Truncate(UINT64_MAX);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_StableLogAppend);

// Buffer slice (refcount) vs the vector copy it replaced, at payload sizes
// from a QRPC header to a full frame. The gap is the per-hop cost the
// zero-copy refactor removed from every layer crossing.
void BM_BufferSlice(benchmark::State& state) {
  Buffer whole(Bytes(static_cast<size_t>(state.range(0)), 0x5a));
  for (auto _ : state) {
    Buffer slice = whole.Slice(1, whole.size() - 1);
    benchmark::DoNotOptimize(slice);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BufferSlice)->Arg(256)->Arg(4096)->Arg(65536);

void BM_BytesCopy(benchmark::State& state) {
  const Bytes whole(static_cast<size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    Bytes copy(whole.begin() + 1, whole.end());
    benchmark::DoNotOptimize(copy);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BytesCopy)->Arg(256)->Arg(4096)->Arg(65536);

// Scheduler enqueue + cancel against a deep standing queue (10k messages to
// disconnected destinations). Pre-index both operations walked queues and
// recomputed depths by scanning every destination; now they are O(1).
void BM_SchedulerEnqueueCancel10k(benchmark::State& state) {
  EventLoop loop;
  Network net(&loop);
  const int kDests = 16;
  for (int d = 0; d < kDests; ++d) {
    net.Connect("mobile", "dest" + std::to_string(d), LinkProfile::WaveLan2(),
                std::make_unique<PeriodicConnectivity>(
                    Duration::Seconds(1e6), Duration::Zero(),
                    TimePoint::Epoch() + Duration::Seconds(1e6)));
  }
  TransportManager mobile(&loop, net.FindHost("mobile"));
  NetworkScheduler* sched = mobile.scheduler();
  uint64_t id = 1;
  auto enqueue = [&](uint64_t message_id) {
    Message m;
    m.header.type = MessageType::kRequest;
    m.header.src = "mobile";
    m.header.dst = "dest" + std::to_string(message_id % kDests);
    m.header.message_id = message_id;
    m.payload = Bytes(256, 0x5a);
    sched->Enqueue(std::move(m));
  };
  for (; id <= 10000; ++id) {
    enqueue(id);
  }
  for (auto _ : state) {
    enqueue(id);
    benchmark::DoNotOptimize(
        sched->CancelMessage("dest" + std::to_string(id % kDests), id));
    ++id;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_SchedulerEnqueueCancel10k);

void BM_EventLoopDispatch(benchmark::State& state) {
  for (auto _ : state) {
    EventLoop loop;
    for (int i = 0; i < 1000; ++i) {
      loop.ScheduleAfter(Duration::Micros(i), [] {});
    }
    loop.Run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventLoopDispatch);

}  // namespace
}  // namespace rover

BENCHMARK_MAIN();
