// E12 -- bandwidth hot path: delta imports + operation coalescing on
// dial-up links.
//
// Paper context: Rover ships whole objects on import and whole snapshots
// on export; on a 14.4 or 2.4 Kbit/s CSLIP link the payload bytes ARE the
// latency. This harness drives a mail/calendar-like workload -- repeated
// small server-side edits followed by client re-imports, plus bursts of
// local edit+export -- and compares two configurations end to end:
//
//   baseline:  delta imports off, operation coalescing off (the paper's
//              whole-object protocol);
//   optimized: delta imports on (client sends its cached version id, the
//              server answers with a delta against the journaled base) and
//              supersedable-operation coalescing on (a newer queued export
//              withdraws its not-yet-transmitted predecessor from the
//              scheduler queue and the stable log).
//
// Reported per network: total payload bytes each direction, virtual time
// to drain, delta hit counts, coalesced ops. BENCH_delta.json records both
// configurations; the optimized run must move >= 30% fewer payload bytes
// on cslip-14.4.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/toolkit.h"

using namespace rover;

namespace {

constexpr char kFolderCode[] = R"(
proc read {} { global state; return $state }
proc put {s} { global state; set state $s; return ok }
)";

constexpr int kObjects = 4;
constexpr size_t kObjectBytes = 8192;
constexpr int kRounds = 6;
constexpr int kBurstExports = 3;

std::string FolderName(int i) { return "folder" + std::to_string(i); }

// Mail-folder-like text: headers and bodies with heavy repetition.
std::string FolderPayload(int obj, size_t bytes) {
  static const char* kLines[] = {
      "From: rover@lcs.mit.edu\n", "To: mobile-host\n",
      "Subject: queued rpc status\n", "Received: by dialup (CSLIP)\n",
      "The access manager queues operations while disconnected.\n",
      "Tentative data is marked until the home server commits it.\n"};
  Rng rng(static_cast<uint64_t>(obj) + 101);
  std::string out;
  out.reserve(bytes + 64);
  while (out.size() < bytes) {
    out += kLines[rng.NextBelow(6)];
  }
  out.resize(bytes);
  return out;
}

// A small edit: a new message arrives at the top of the folder.
std::string ServerEdit(std::string data, int round, int obj) {
  const std::string added = "From: sender" + std::to_string(round) +
                            "@mit.edu\nSubject: message " +
                            std::to_string(round * kObjects + obj) + "\n";
  data.insert(0, added);
  data.resize(kObjectBytes);
  return data;
}

struct RunResult {
  uint64_t client_payload_bytes = 0;  // uplink: requests + exports
  uint64_t server_payload_bytes = 0;  // downlink: import bodies / deltas
  uint64_t total_payload_bytes = 0;
  uint64_t delta_hits = 0;
  uint64_t delta_fallbacks = 0;
  uint64_t coalesced_ops = 0;
  double drain_s = 0;
};

RunResult Measure(const LinkProfile& profile, bool optimized) {
  Testbed bed;
  std::vector<std::string> data(kObjects);
  for (int i = 0; i < kObjects; ++i) {
    data[i] = FolderPayload(i, kObjectBytes);
    bed.server()->rover()->CreateObject(
        MakeRdo(FolderName(i), "lww", kFolderCode, data[i]));
  }

  ClientNodeOptions copts;
  copts.access.delta_imports = optimized;
  copts.qrpc.coalesce_superseded = optimized;
  RoverClientNode* client =
      bed.AddClient("mobile", profile, nullptr, copts);

  // Initial population: full-body imports either way.
  for (int i = 0; i < kObjects; ++i) {
    client->access()->Import(FolderName(i)).Wait(bed.loop());
  }

  ImportOptions refetch;
  refetch.allow_cached = false;
  for (int round = 0; round < kRounds; ++round) {
    // New mail lands server-side; the client re-imports every folder.
    for (int i = 0; i < kObjects; ++i) {
      data[i] = ServerEdit(data[i], round, i);
      RdoDescriptor next = *bed.server()->store()->Get(FolderName(i));
      next.data = data[i];
      bed.server()->store()->Put(next);
    }
    for (int i = 0; i < kObjects; ++i) {
      client->access()->Import(FolderName(i), refetch).Wait(bed.loop());
    }

    // Burst of local edits, each followed by an eager export. While the
    // first snapshot crawls up the dial-up link, later exports of the same
    // object supersede the queued ones.
    const std::string victim = FolderName(round % kObjects);
    std::vector<Promise<ExportResult>> exports;
    for (int k = 0; k < kBurstExports; ++k) {
      std::string edited = *client->access()->ReadData(victim);
      edited.insert(0, "Status: read pass " + std::to_string(k) + "\n");
      edited.resize(kObjectBytes);
      client->access()->Invoke(victim, "put", {edited}).Wait(bed.loop());
      exports.push_back(client->access()->Export(victim));
    }
    for (auto& e : exports) {
      e.Wait(bed.loop());
    }
    // The export merge may have shifted the client's view; resync ours.
    data[round % kObjects] = *client->access()->ReadCommittedData(victim);
  }
  bed.Run();

  RunResult r;
  const SchedulerStats up = client->transport()->scheduler()->stats();
  const SchedulerStats down = bed.server()->transport()->scheduler()->stats();
  r.client_payload_bytes = up.payload_bytes_sent;
  r.server_payload_bytes = down.payload_bytes_sent;
  r.total_payload_bytes = r.client_payload_bytes + r.server_payload_bytes;
  r.delta_hits = client->access()->stats().delta_hits;
  r.delta_fallbacks = client->access()->stats().delta_fallbacks;
  r.coalesced_ops = client->qrpc()->stats().coalesced;
  r.drain_s = (bed.loop()->now() - TimePoint::Epoch()).seconds();
  return r;
}

}  // namespace

int main() {
  std::printf("E12: delta imports + operation coalescing on dial-up links\n");
  std::printf("workload: %d x %zu B folders, %d rounds of edit + re-import,\n"
              "%d-deep export bursts per round\n\n",
              kObjects, kObjectBytes, kRounds, kBurstExports);

  const std::vector<LinkProfile> networks = {LinkProfile::Cslip144(),
                                             LinkProfile::Cslip24()};
  struct Row {
    std::string network;
    RunResult base;
    RunResult opt;
  };
  std::vector<Row> rows;
  for (const LinkProfile& profile : networks) {
    Row row;
    row.network = profile.name;
    row.base = Measure(profile, /*optimized=*/false);
    row.opt = Measure(profile, /*optimized=*/true);
    rows.push_back(row);
  }

  BenchTable bytes_table("Payload bytes moved (both directions)",
                         {"network", "baseline", "optimized", "reduction",
                          "delta hits", "coalesced"});
  BenchTable time_table("Virtual time to drain the workload",
                        {"network", "baseline", "optimized", "speedup"});
  for (const Row& row : rows) {
    const double reduction =
        1.0 - static_cast<double>(row.opt.total_payload_bytes) /
                  static_cast<double>(row.base.total_payload_bytes);
    bytes_table.AddRow({row.network, FmtBytes(row.base.total_payload_bytes),
                        FmtBytes(row.opt.total_payload_bytes),
                        FmtPercent(reduction),
                        FmtCount(row.opt.delta_hits),
                        FmtCount(row.opt.coalesced_ops)});
    time_table.AddRow({row.network, FmtSeconds(row.base.drain_s),
                       FmtSeconds(row.opt.drain_s),
                       FmtRatio(row.base.drain_s / row.opt.drain_s)});
  }
  bytes_table.Print();
  time_table.Print();

  const char* json_path = "BENCH_delta.json";
  if (FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f, "{\n  \"bench\": \"delta\",\n  \"runs\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      for (int cfg = 0; cfg < 2; ++cfg) {
        const RunResult& r = cfg == 0 ? row.base : row.opt;
        std::fprintf(
            f,
            "    {\"network\": \"%s\", \"config\": \"%s\", "
            "\"payload_bytes\": %llu, \"uplink_bytes\": %llu, "
            "\"downlink_bytes\": %llu, \"delta_hits\": %llu, "
            "\"delta_fallbacks\": %llu, \"coalesced_ops\": %llu, "
            "\"drain_s\": %.3f}%s\n",
            row.network.c_str(), cfg == 0 ? "baseline" : "optimized",
            static_cast<unsigned long long>(r.total_payload_bytes),
            static_cast<unsigned long long>(r.client_payload_bytes),
            static_cast<unsigned long long>(r.server_payload_bytes),
            static_cast<unsigned long long>(r.delta_hits),
            static_cast<unsigned long long>(r.delta_fallbacks),
            static_cast<unsigned long long>(r.coalesced_ops), r.drain_s,
            (i + 1 == rows.size() && cfg == 1) ? "" : ",");
      }
    }
    const double reduction144 =
        1.0 - static_cast<double>(rows[0].opt.total_payload_bytes) /
                  static_cast<double>(rows[0].base.total_payload_bytes);
    std::fprintf(f, "  ],\n  \"reduction_cslip144\": %.4f\n}\n", reduction144);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }

  std::printf(
      "\nShape check: on CSLIP every re-import of an edited 8 KiB folder\n"
      "ships a delta of the edit instead of the folder, and each export\n"
      "burst uploads one snapshot instead of three. Expect well over a 30%%\n"
      "payload reduction at 14.4 Kbit/s and a matching drain-time win.\n");
  return 0;
}
