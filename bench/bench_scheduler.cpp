// E10 -- network scheduler ablation: priority queues vs. FIFO.
//
// Paper §5.3: "The implementation of the network scheduler has several
// queues for different priorities and it chooses a network interface based
// on availability and quality." This harness quantifies both halves:
//
//   1. Priorities: a foreground (user-visible) RPC issued while background
//      prefetch traffic is queued. With priority queues the user request
//      jumps the queue; in FIFO it waits behind every queued transfer.
//   2. Interface selection: a host with both a dial-up and a WaveLAN link,
//      where WaveLAN is intermittently available -- the scheduler should
//      use the better link whenever it is up.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/toolkit.h"

using namespace rover;

namespace {

// Foreground latency with N queued background messages ahead of it.
// `use_priorities` false = tag everything foreground (FIFO behaviour).
double ForegroundLatency(const LinkProfile& profile, int background_messages,
                         bool use_priorities) {
  Testbed bed;
  bed.server()->qrpc()->RegisterHandler(
      "null", [](const RpcRequestBody&, const Message&, QrpcServer::Responder respond) {
        respond(RpcResponseBody{});
      });
  RoverClientNode* client = bed.AddClient(
      "mobile", profile,
      std::make_unique<PeriodicConnectivity>(Duration::Seconds(1e7), Duration::Zero(),
                                             TimePoint::Epoch() + Duration::Seconds(10)));
  // While the link is still down, queue background traffic...
  for (int i = 0; i < background_messages; ++i) {
    QrpcCallOptions opts;
    opts.priority = use_priorities ? Priority::kBackground : Priority::kForeground;
    opts.log_request = false;
    client->qrpc()->Call("server", "null", {std::string(2048, 'b')}, opts);
  }
  // ...the link comes up at t=10 s and the queue starts draining; the
  // user clicks one second later, mid-drain.
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(11));
  // ...then the user acts.
  QrpcCallOptions fg;
  fg.priority = Priority::kForeground;
  fg.log_request = false;
  const TimePoint start = bed.loop()->now();
  QrpcCall call = client->qrpc()->Call("server", "null", {std::string("click")}, fg);
  call.result.Wait(bed.loop());
  return (bed.loop()->now() - start).seconds();
}

// Time to move a payload when a second (better) interface flaps in and out.
double TwoLinkTransfer(bool with_wavelan) {
  Testbed bed;
  bed.server()->qrpc()->RegisterHandler(
      "sink", [](const RpcRequestBody&, const Message&, QrpcServer::Responder respond) {
        respond(RpcResponseBody{});
      });
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::Cslip144());
  if (with_wavelan) {
    // WaveLAN available 30 s out of every 60 s.
    bed.AddLink("mobile", "server", LinkProfile::WaveLan2(),
                std::make_unique<PeriodicConnectivity>(Duration::Seconds(30),
                                                       Duration::Seconds(30)));
  }
  std::vector<QrpcCall> calls;
  for (int i = 0; i < 20; ++i) {
    QrpcCallOptions opts;
    opts.log_request = false;
    calls.push_back(client->qrpc()->Call("server", "sink", {std::string(8192, 'd')}, opts));
  }
  const TimePoint start = bed.loop()->now();
  bed.Run();
  (void)start;
  double last = 0;
  for (auto& call : calls) {
    if (call.result.ready()) {
      last = std::max(last, call.result.value().completed_at.seconds());
    }
  }
  return last;
}

}  // namespace

int main() {
  std::printf("E10: network scheduler ablations (paper §5.3)\n");

  BenchTable prio("Foreground RPC latency behind queued background traffic",
                  {"network", "bg queued", "priority queues", "FIFO", "win"});
  for (const LinkProfile& profile : {LinkProfile::Cslip144(), LinkProfile::WaveLan2()}) {
    for (int bg : {8, 32}) {
      const double with = ForegroundLatency(profile, bg, true);
      const double without = ForegroundLatency(profile, bg, false);
      prio.AddRow({profile.name, FmtCount(static_cast<uint64_t>(bg)), FmtSeconds(with),
                   FmtSeconds(without), FmtRatio(without / with)});
    }
  }
  prio.Print();

  BenchTable iface("Interface selection: 20 x 8 KiB transfers",
                   {"links available", "completion time"});
  iface.AddRow({"CSLIP 14.4 only", FmtSeconds(TwoLinkTransfer(false))});
  iface.AddRow({"+ WaveLAN (up 50% of the time)", FmtSeconds(TwoLinkTransfer(true))});
  iface.Print();

  std::printf(
      "\nShape check: with priority queues, a click waits for at most one\n"
      "in-flight background message; FIFO makes it wait for the whole\n"
      "queue. The scheduler opportunistically moves bulk data onto the\n"
      "faster interface whenever its schedule allows, cutting completion\n"
      "time by roughly the bandwidth ratio during up-periods.\n");
  return 0;
}
