// E7 -- Application code sizes (analogue of the paper's application-effort
// table). The paper reports lines of code for Rover Exmh, Rover Ical, and
// the Web browser proxy, arguing that porting applications onto the
// toolkit is cheap because the toolkit supplies caching, queueing, and
// reconciliation.
//
// This harness counts real lines in this repository at run time: the
// toolkit layers vs. each application module vs. the example programs.
// The shape to check: each application is a small fraction of the toolkit
// it rides on.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace fs = std::filesystem;
using namespace rover;

namespace {

struct Count {
  size_t files = 0;
  size_t lines = 0;      // non-blank
  size_t code_lines = 0; // non-blank, non-comment
};

Count CountPath(const fs::path& root, const std::vector<std::string>& names) {
  Count total;
  for (const std::string& name : names) {
    const fs::path path = root / name;
    std::error_code ec;
    if (!fs::exists(path, ec)) {
      continue;
    }
    std::vector<fs::path> files;
    if (fs::is_directory(path, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file()) {
          const auto ext = entry.path().extension();
          if (ext == ".cc" || ext == ".h" || ext == ".cpp") {
            files.push_back(entry.path());
          }
        }
      }
    } else {
      files.push_back(path);
    }
    for (const fs::path& file : files) {
      std::ifstream in(file);
      std::string line;
      ++total.files;
      while (std::getline(in, line)) {
        size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos) {
          continue;
        }
        ++total.lines;
        if (line.compare(start, 2, "//") != 0) {
          ++total.code_lines;
        }
      }
    }
  }
  return total;
}

}  // namespace

int main() {
  std::printf("E7: application code sizes (paper's application-effort table)\n");
  const fs::path root = ROVER_SOURCE_DIR;
  std::printf("counting sources under %s\n", root.c_str());

  struct Row {
    const char* label;
    std::vector<std::string> paths;
  };
  const Row toolkit_rows[] = {
      {"util + sim substrate", {"src/util", "src/sim"}},
      {"transport + QRPC", {"src/transport", "src/qrpc"}},
      {"TcLite interpreter", {"src/tclite"}},
      {"RDO + store + cache + core", {"src/rdo", "src/store", "src/cache", "src/core"}},
  };
  const Row app_rows[] = {
      {"Rover mail reader (Exmh)", {"src/apps/mail.h", "src/apps/mail.cc"}},
      {"Rover calendar (Ical)", {"src/apps/calendar.h", "src/apps/calendar.cc"}},
      {"Web browser proxy", {"src/apps/web.h", "src/apps/web.cc"}},
  };
  const Row example_rows[] = {
      {"quickstart example", {"examples/quickstart.cpp"}},
      {"disconnected_mail example", {"examples/disconnected_mail.cpp"}},
      {"shared_calendar example", {"examples/shared_calendar.cpp"}},
      {"web_clickahead example", {"examples/web_clickahead.cpp"}},
      {"code_shipping example", {"examples/code_shipping.cpp"}},
  };

  size_t toolkit_code = 0;
  BenchTable table("Lines of code (non-blank / code-only)",
                   {"component", "files", "lines", "code lines", "vs toolkit"});
  for (const Row& row : toolkit_rows) {
    Count c = CountPath(root, row.paths);
    toolkit_code += c.code_lines;
    table.AddRow({row.label, FmtCount(c.files), FmtCount(c.lines),
                  FmtCount(c.code_lines), "-"});
  }
  for (const Row& row : app_rows) {
    Count c = CountPath(root, row.paths);
    table.AddRow({row.label, FmtCount(c.files), FmtCount(c.lines),
                  FmtCount(c.code_lines),
                  FmtPercent(static_cast<double>(c.code_lines) /
                             static_cast<double>(toolkit_code))});
  }
  for (const Row& row : example_rows) {
    Count c = CountPath(root, row.paths);
    table.AddRow({row.label, FmtCount(c.files), FmtCount(c.lines),
                  FmtCount(c.code_lines),
                  FmtPercent(static_cast<double>(c.code_lines) /
                             static_cast<double>(toolkit_code))});
  }
  table.Print();

  std::printf(
      "\nShape check: as in the paper, each full application is a few\n"
      "percent of the toolkit's size -- caching, queued RPC, conflict\n"
      "resolution, and notification come from the toolkit, not the app.\n");
  return 0;
}
