// E3 -- Cached-RDO local invocation vs. RPC (paper §7 claim 3).
//
// "Caching RDOs reduces latency and bandwidth consumption. A local
// invocation on an RDO is 56 times faster than sending an RPC over a
// TCP/CSLIP14.4 connection."
//
// For each network: the cost of invoking a method on a locally cached RDO
// (interpreter execution only) vs. shipping the same invocation to the
// server. The absolute ratio depends on interpreter speed and the CPU cost
// model; the paper's shape -- local invocation is orders of magnitude
// cheaper, with the gap widening as bandwidth falls -- is the check.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/toolkit.h"

using namespace rover;

namespace {

constexpr char kObjectCode[] = R"(
proc lookup {key} {
  global state
  if {[dict exists $state $key]} { return [dict get $state $key] }
  return ""
}
)";

struct Sample {
  double local_s = 0;
  double remote_s = 0;
  double bytes_per_remote = 0;
};

Sample Measure(const LinkProfile& profile, const RdoCostModel& cpu, int iterations) {
  Testbed bed;
  bed.server()->rover()->CreateObject(
      MakeRdo("config", "lww", kObjectCode, "color blue size large"));
  ClientNodeOptions options;
  options.access.rdo_costs = cpu;
  RoverClientNode* client = bed.AddClient("mobile", profile, nullptr, options);
  client->access()->Import("config").Wait(bed.loop());

  std::vector<double> local;
  std::vector<double> remote;
  const auto& sched_before = client->transport()->scheduler()->stats();
  const uint64_t bytes_before = sched_before.bytes_sent;

  for (int i = 0; i < iterations; ++i) {
    {
      InvokeOptions opts;
      opts.force_site = ExecutionSite::kClient;
      const TimePoint start = bed.loop()->now();
      auto p = client->access()->Invoke("config", "lookup", {"color"}, opts);
      p.Wait(bed.loop());
      local.push_back((bed.loop()->now() - start).seconds());
    }
    {
      InvokeOptions opts;
      opts.force_site = ExecutionSite::kServer;
      const TimePoint start = bed.loop()->now();
      auto p = client->access()->Invoke("config", "lookup", {"color"}, opts);
      p.Wait(bed.loop());
      remote.push_back((bed.loop()->now() - start).seconds());
    }
  }
  const uint64_t bytes =
      client->transport()->scheduler()->stats().bytes_sent - bytes_before;
  return Sample{Mean(local), Mean(remote),
                static_cast<double>(bytes) / iterations};
}

}  // namespace

int main() {
  std::printf("E3: local invocation on a cached RDO vs RPC (paper §7 claim 3)\n");
  std::printf("workload: dict lookup method, 20 iterations per cell\n");

  struct Cpu {
    const char* name;
    RdoCostModel model;
  };
  // The paper's clients interpreted Tcl on a 25/75 MHz i486; its 56x
  // figure reflects a ~ms-scale local invocation. We report both that
  // calibration and a modern-CPU one.
  const Cpu cpus[] = {
      {"1995 i486 + Tcl (0.5 ms/command)",
       {Duration::Micros(500), Duration::Millis(5)}},
      {"modern CPU (2 us/command, default)", RdoCostModel{}},
  };
  for (const Cpu& cpu : cpus) {
    BenchTable table(std::string("Invocation cost -- ") + cpu.name,
                     {"network", "local invoke", "remote RPC", "local speedup",
                      "wire bytes/RPC"});
    for (const LinkProfile& profile : LinkProfile::PaperNetworks()) {
      Sample s = Measure(profile, cpu.model, 20);
      char bytes[32];
      std::snprintf(bytes, sizeof(bytes), "%.0f", s.bytes_per_remote);
      table.AddRow({profile.name, FmtSeconds(s.local_s), FmtSeconds(s.remote_s),
                    FmtRatio(s.remote_s / s.local_s), bytes});
    }
    table.Print();
  }

  // Disconnected row: the remote column is not a number -- it never
  // completes. Local invocation is the only option and still works.
  {
    Testbed bed;
    bed.server()->rover()->CreateObject(
        MakeRdo("config", "lww", kObjectCode, "color blue"));
    bed.AddClient("mobile", LinkProfile::WaveLan2(),
                  std::make_unique<IntervalConnectivity>(
                      std::vector<IntervalConnectivity::Interval>{
                          {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(5)}}));
    RoverClientNode* client = bed.client("mobile");
    client->access()->Import("config").Wait(bed.loop());
    bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(10));
    InvokeOptions opts;
    opts.force_site = ExecutionSite::kClient;
    const TimePoint start = bed.loop()->now();
    auto p = client->access()->Invoke("config", "lookup", {"color"}, opts);
    p.Wait(bed.loop());
    std::printf("\ndisconnected: local invoke still completes in %s; an RPC would\n"
                "block until reconnection.\n",
                FmtSeconds((bed.loop()->now() - start).seconds()).c_str());
  }

  std::printf(
      "\nShape check: the paper reports 56x vs TCP/CSLIP-14.4 with its\n"
      "Tcl-based prototype; the exact multiple depends on interpreter\n"
      "speed, but the ordering (Ethernet < WaveLAN << CSLIP links) and the\n"
      "orders-of-magnitude local win reproduce.\n");
  return 0;
}
