// E11 -- overload protection: offered load vs. goodput and shed rate.
//
// A mobile client that queues work while disconnected will eventually dump
// that backlog onto a slow link and a shared server. This harness drives a
// client with every overload mechanism armed (scheduler depth/byte budgets,
// QRPC call/log budgets, server concurrency cap with pushback) at offered
// loads from well under to well over capacity, and reports what the
// protection buys:
//
//   * goodput plateaus at link/server capacity instead of collapsing;
//   * excess load is refused or shed explicitly (kResourceExhausted), and
//     only optional background traffic is shed after admission;
//   * client memory (stable log + scheduler queue) stays under its budgets
//     at every sample, no matter how much load is offered.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/toolkit.h"

using namespace rover;

namespace {

struct RunResult {
  uint64_t offered = 0;       // durable + background calls issued
  uint64_t ok = 0;            // completed with OK
  uint64_t ok_durable = 0;    // OK completions of logged default-priority ops
  uint64_t exhausted = 0;     // refused at admission or shed (kResourceExhausted)
  uint64_t unavailable = 0;   // pushback retries gave up (kUnavailable)
  uint64_t pushback_honored = 0;
  size_t max_log_bytes = 0;     // high-water mark, sampled every 250 ms
  size_t max_queued_bytes = 0;  // "
  double drain_s = 0;           // virtual time until the system quiesced
  double goodput_per_s = 0;     // OK completions / drain time
  double shed_rate = 0;         // kResourceExhausted / offered
};

constexpr double kWindowSeconds = 20;
constexpr size_t kPayloadBytes = 512;
constexpr size_t kMaxQueuedBytes = 16 << 10;
constexpr size_t kMaxLogBytes = 12 << 10;

// Offered load: `calls_per_sec` durable (logged, default-priority) ops per
// second plus the same rate of background (unlogged) prefetch-like traffic,
// sustained for 20 s; the run then continues until everything drains.
RunResult Measure(const LinkProfile& profile, int calls_per_sec) {
  Testbed::Options topts;
  topts.server.qrpc.max_concurrent_requests = 2;
  topts.server.qrpc.dispatch_cost = Duration::Millis(100);
  topts.server.qrpc.pushback_retry_after = Duration::Millis(200);
  Testbed bed(topts);
  bed.loop()->set_event_limit(20'000'000);
  bed.server()->qrpc()->RegisterHandler(
      "sink", [](const RpcRequestBody&, const Message&, QrpcServer::Responder respond) {
        respond(RpcResponseBody{});
      });

  ClientNodeOptions copts;
  copts.scheduler.max_queued_messages = 32;
  copts.scheduler.max_queued_bytes = kMaxQueuedBytes;
  copts.qrpc.max_outstanding_calls = 64;
  copts.qrpc.max_log_bytes = kMaxLogBytes;
  RoverClientNode* client = bed.AddClient("mobile", profile, nullptr, copts);

  const int total = static_cast<int>(kWindowSeconds) * calls_per_sec;
  const std::string payload(kPayloadBytes, 'x');
  std::vector<QrpcCall> durable(total);
  std::vector<QrpcCall> background(total);
  for (int i = 0; i < total; ++i) {
    const TimePoint at =
        TimePoint::Epoch() + Duration::Seconds(1.0 + static_cast<double>(i) / calls_per_sec);
    bed.loop()->ScheduleAt(at, [&durable, client, &payload, i] {
      durable[i] = client->qrpc()->Call("server", "sink", {payload});
    });
    bed.loop()->ScheduleAt(at, [&background, client, &payload, i] {
      QrpcCallOptions opts;
      opts.priority = Priority::kBackground;
      opts.log_request = false;
      background[i] = client->qrpc()->Call("server", "sink", {payload}, opts);
    });
  }

  RunResult r;
  r.offered = static_cast<uint64_t>(total) * 2;

  // Sample the client's memory through the loaded window.
  auto sampler = std::make_shared<std::function<void()>>();
  *sampler = [&r, &bed, client, sampler] {
    r.max_log_bytes = std::max(r.max_log_bytes, client->log()->TotalBytes());
    r.max_queued_bytes =
        std::max(r.max_queued_bytes, client->transport()->scheduler()->QueuedPayloadBytes());
    if (bed.loop()->now() < TimePoint::Epoch() + Duration::Seconds(kWindowSeconds + 5)) {
      bed.loop()->ScheduleAfter(Duration::Millis(250), *sampler);
    }
  };
  bed.loop()->ScheduleAt(TimePoint::Epoch() + Duration::Seconds(1), *sampler);

  bed.Run();

  auto tally = [&r](std::vector<QrpcCall>& calls, bool is_durable) {
    for (QrpcCall& call : calls) {
      if (!call.result.ready()) {
        continue;  // never happens with the protections on; see shape check
      }
      const Status& st = call.result.value().status;
      if (st.ok()) {
        ++r.ok;
        if (is_durable) {
          ++r.ok_durable;
        }
      } else if (st.code() == StatusCode::kResourceExhausted) {
        ++r.exhausted;
      } else if (st.code() == StatusCode::kUnavailable) {
        ++r.unavailable;
      }
    }
  };
  tally(durable, true);
  tally(background, false);

  r.pushback_honored = client->qrpc()->stats().pushback_honored;
  r.drain_s = (bed.loop()->now() - TimePoint::Epoch()).seconds();
  r.goodput_per_s = r.drain_s > 0 ? static_cast<double>(r.ok) / r.drain_s : 0;
  r.shed_rate = static_cast<double>(r.exhausted) / static_cast<double>(r.offered);
  return r;
}

std::string FmtRate(double per_s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f/s", per_s);
  return buf;
}

}  // namespace

int main() {
  std::printf("E11: overload protection -- offered load vs goodput and shed rate\n");
  std::printf(
      "workload: N durable + N background 512 B calls per second for 20 s;\n"
      "server capped at 2 concurrent requests (100 ms dispatch, pushback on);\n"
      "client budgets: 32 msgs / 16 KiB queued, 64 calls / 12 KiB log\n");

  struct Row {
    std::string network;
    int calls_per_sec;
    RunResult r;
  };
  std::vector<Row> rows;

  for (const LinkProfile& profile : {LinkProfile::Cslip144(), LinkProfile::WaveLan2()}) {
    BenchTable table("Offered load sweep over " + profile.name,
                     {"offered (calls/s)", "goodput (ok/s)", "ok", "shed/refused",
                      "gave up", "pushback honored", "peak log", "peak queue", "drain"});
    for (int rate : {1, 2, 5, 10, 20}) {
      RunResult r = Measure(profile, rate);
      rows.push_back(Row{profile.name, rate, r});
      table.AddRow({FmtCount(static_cast<uint64_t>(rate) * 2),
                    FmtRate(r.goodput_per_s), FmtCount(r.ok),
                    FmtPercent(r.shed_rate), FmtCount(r.unavailable),
                    FmtCount(r.pushback_honored), FmtBytes(r.max_log_bytes),
                    FmtBytes(r.max_queued_bytes), FmtSeconds(r.drain_s)});
    }
    table.Print();
  }

  // Machine-readable copy, one object per (network, offered-rate) cell.
  const char* json_path = "BENCH_overload.json";
  if (FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"overload\",\n  \"window_seconds\": %g,\n"
                 "  \"payload_bytes\": %zu,\n  \"max_queued_bytes\": %zu,\n"
                 "  \"max_log_bytes\": %zu,\n  \"results\": [\n",
                 kWindowSeconds, kPayloadBytes, kMaxQueuedBytes, kMaxLogBytes);
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(f,
                   "    {\"network\": \"%s\", \"offered_calls_per_s\": %d, "
                   "\"offered\": %llu, \"ok\": %llu, \"ok_durable\": %llu, "
                   "\"shed_or_refused\": %llu, \"gave_up_unavailable\": %llu, "
                   "\"pushback_honored\": %llu, \"goodput_per_s\": %.3f, "
                   "\"shed_rate\": %.4f, \"peak_log_bytes\": %zu, "
                   "\"peak_queued_bytes\": %zu, \"drain_s\": %.3f}%s\n",
                   row.network.c_str(), row.calls_per_sec * 2,
                   static_cast<unsigned long long>(row.r.offered),
                   static_cast<unsigned long long>(row.r.ok),
                   static_cast<unsigned long long>(row.r.ok_durable),
                   static_cast<unsigned long long>(row.r.exhausted),
                   static_cast<unsigned long long>(row.r.unavailable),
                   static_cast<unsigned long long>(row.r.pushback_honored),
                   row.r.goodput_per_s, row.r.shed_rate, row.r.max_log_bytes,
                   row.r.max_queued_bytes, row.r.drain_s,
                   i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }

  std::printf(
      "\nShape check: goodput rises with offered load, then plateaus at link\n"
      "(CSLIP) or server (WaveLAN) capacity while the shed rate climbs --\n"
      "overload turns into explicit kResourceExhausted refusals, never\n"
      "unbounded queues: peak log and queue bytes stay under their budgets\n"
      "in every cell, and every call resolves (nothing hangs or is lost).\n");
  return 0;
}
