// E14 -- CPU hot path at scale: many-client fan-in throughput.
//
// The paper's testbed drove a handful of mobile hosts; the ROADMAP north
// star is millions. This harness measures how much *CPU* one server-plus-
// clients simulation burns per operation as fan-in grows: N clients (1k /
// 4k / 10k), each issuing a small burst of logged QRPCs over WaveLAN,
// drained to quiescence. Simulated time is free; what we report is host
// CPU, because that is what bounds how many simulated clients per server
// one core can drive -- and therefore how far the chaos / overload /
// failover harnesses scale.
//
// Reported per client count:
//   * ops/sec of host CPU (completed RPCs / process CPU seconds)
//   * CPU microseconds per op
//   * payload bytes memcpy'd per op (Buffer copy counter; the zero-copy
//     refactor's target metric)
//   * peak RSS (MiB)
//
// Writes BENCH_scale.json with these numbers next to the pre-PR-9 baseline
// (measured at commit f6c2ea4, the copy-per-hop scheduler-scan code),
// so the >=3x ops/sec and >=50% copy-reduction acceptance gates are
// checked against recorded history, not against vibes.

#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/toolkit.h"
#include "src/obs/cpu_scope.h"
#include "src/util/buffer.h"

using namespace rover;

namespace {

constexpr size_t kNumZones = static_cast<size_t>(obs::CpuZone::kCount);

struct Row {
  size_t clients = 0;
  uint64_t ops = 0;
  double cpu_seconds = 0;
  double ops_per_cpu_sec = 0;
  double us_per_op = 0;
  double copy_bytes_per_op = 0;
  double peak_rss_mib = 0;
  // Per-subsystem CPU attribution (exclusive seconds + scope entries);
  // only filled for measured rows, not the recorded baseline.
  bool has_breakdown = false;
  double zone_seconds[kNumZones] = {};
  uint64_t zone_enters[kNumZones] = {};
};

double ProcessCpuSeconds() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) + static_cast<double>(t.tv_usec) * 1e-6;
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

double PeakRssMib() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

// N clients fan into one durable server; each client issues `ops_per_client`
// logged calls (256 B args, every 8th 2 KiB) staggered across the first
// simulated second, then the bed drains to quiescence.
Row Measure(size_t n_clients, int ops_per_client) {
  Row row;
  row.clients = n_clients;

  Testbed bed;
  bed.server()->qrpc()->RegisterHandler(
      "echo", [](const RpcRequestBody& req, const Message&, QrpcServer::Responder respond) {
        RpcResponseBody body;
        if (!req.args.empty()) {
          body.result = req.args[0];
        }
        respond(body);
      });

  std::vector<RoverClientNode*> clients;
  clients.reserve(n_clients);
  for (size_t i = 0; i < n_clients; ++i) {
    clients.push_back(bed.AddClient("mobile-" + std::to_string(i), LinkProfile::WaveLan2()));
  }

  const std::string small(256, 'q');
  const std::string big(2048, 'Q');
  uint64_t issued = 0;

  auto& attr = obs::CpuAttribution::Instance();
  attr.CyclesPerSecond();  // calibrate outside the measured window
  attr.set_enabled(true);
  attr.Reset();
  const double cpu_before = ProcessCpuSeconds();
  const uint64_t copies_before = PayloadCopyBytes();
  for (size_t i = 0; i < n_clients; ++i) {
    RoverClientNode* c = clients[i];
    // Stagger issue times so the server sees a sustained fan-in, not one
    // synchronized tick.
    const Duration start = Duration::Micros(static_cast<int64_t>((i * 997) % 1000000));
    bed.loop()->ScheduleAfter(start, [c, ops_per_client, &small, &big, &issued] {
      for (int k = 0; k < ops_per_client; ++k) {
        c->qrpc()->Call("server", "echo", {(k % 8 == 7) ? big : small});
        ++issued;
      }
    });
  }
  bed.Run();
  const double cpu_after = ProcessCpuSeconds();
  const uint64_t copies_after = PayloadCopyBytes();
  attr.set_enabled(false);
  row.has_breakdown = true;
  const double cps = attr.CyclesPerSecond();
  for (size_t z = 0; z < kNumZones; ++z) {
    const auto& t = attr.totals(static_cast<obs::CpuZone>(z));
    row.zone_seconds[z] = static_cast<double>(t.cycles) / cps;
    row.zone_enters[z] = t.enters;
  }

  const uint64_t completed = bed.server()->qrpc()->stats().requests;
  row.ops = completed;
  row.cpu_seconds = cpu_after - cpu_before;
  row.ops_per_cpu_sec = static_cast<double>(completed) / row.cpu_seconds;
  row.us_per_op = row.cpu_seconds * 1e6 / static_cast<double>(completed);
  row.copy_bytes_per_op =
      static_cast<double>(copies_after - copies_before) / static_cast<double>(completed);
  row.peak_rss_mib = PeakRssMib();
  if (completed < issued) {
    std::printf("  WARNING: %llu issued but only %llu completed\n",
                static_cast<unsigned long long>(issued),
                static_cast<unsigned long long>(completed));
  }
  return row;
}

// Pre-PR-9 baseline, measured at commit f6c2ea4 on this container with the
// same workload (vector<uint8_t> payload copies at every hop; std::map
// scheduler with O(all-dests) depth scans). Keep in sync with
// BENCH_scale.json's "baseline_pre" section.
const Row kBaseline[] = {
    // clients, ops, cpu_s, ops/cpu_s, us/op, copy_bytes/op, rss_mib
    {1000, 8000, 0.391, 20447, 48.91, 7921, 52.4},
    {4000, 32000, 7.204, 4442, 225.13, 7925, 176.4},
    {10000, 80000, 59.764, 1339, 747.05, 7926, 423.2},
};

void AppendJsonRow(std::string* out, const Row& r, bool last) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"clients\": %zu, \"ops\": %llu, \"cpu_seconds\": %.3f, "
                "\"ops_per_cpu_sec\": %.0f, \"us_per_op\": %.2f, "
                "\"copy_bytes_per_op\": %.0f, \"peak_rss_mib\": %.1f",
                r.clients, static_cast<unsigned long long>(r.ops), r.cpu_seconds,
                r.ops_per_cpu_sec, r.us_per_op, r.copy_bytes_per_op, r.peak_rss_mib);
  *out += buf;
  if (r.has_breakdown) {
    *out += ",\n     \"cpu_breakdown\": {";
    for (size_t z = 0; z < kNumZones; ++z) {
      std::snprintf(buf, sizeof(buf), "%s\"%s\": {\"seconds\": %.4f, \"enters\": %llu}",
                    z == 0 ? "" : ", ",
                    std::string(obs::CpuZoneName(static_cast<obs::CpuZone>(z))).c_str(),
                    r.zone_seconds[z], static_cast<unsigned long long>(r.zone_enters[z]));
      *out += buf;
    }
    *out += "}";
  }
  *out += last ? "}\n" : "},\n";
}

}  // namespace

int main(int argc, char** argv) {
  int ops_per_client = 8;
  std::vector<size_t> counts = {1000, 4000, 10000, 25000};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      counts = {1000};
    }
  }

  std::printf("E14: many-client fan-in throughput (CPU hot path at scale)\n");
  std::printf("workload: N clients x %d logged echo RPCs (256B/2KiB) over WaveLAN,"
              " drained to quiescence\n\n", ops_per_client);

  BenchTable table("host CPU per operation vs fan-in",
                   {"clients", "ops", "cpu", "ops/cpu-sec", "us/op", "copy B/op",
                    "peak RSS"});
  std::vector<Row> rows;
  for (size_t n : counts) {
    Row r = Measure(n, ops_per_client);
    rows.push_back(r);
    table.AddRow({FmtCount(r.clients), FmtCount(r.ops), FmtSeconds(r.cpu_seconds),
                  FmtCount(static_cast<uint64_t>(r.ops_per_cpu_sec)),
                  std::to_string(r.us_per_op).substr(0, 6),
                  FmtBytes(static_cast<size_t>(r.copy_bytes_per_op)),
                  FmtBytes(static_cast<size_t>(r.peak_rss_mib * 1024 * 1024))});
  }
  table.Print();

  std::string json;
  json += "{\n";
  json += "  \"experiment\": \"E14 many-client fan-in throughput\",\n";
  json += "  \"workload\": \"N clients x 8 logged echo RPCs (256B, every 8th 2KiB) "
          "over WaveLAN, drained to quiescence; ops/sec measured against process "
          "CPU time\",\n";
  json += "  \"baseline_pre\": {\n";
  json += "    \"note\": \"measured at commit f6c2ea4 (pre zero-copy/indexed-scheduler): "
          "payload memcpy at every layer hop, std::map scheduler with O(all-dests) "
          "depth scan per enqueue\",\n";
  json += "    \"rows\": [\n";
  constexpr size_t kNumBaseline = sizeof(kBaseline) / sizeof(kBaseline[0]);
  for (size_t i = 0; i < kNumBaseline; ++i) {
    AppendJsonRow(&json, kBaseline[i], i + 1 == kNumBaseline);
  }
  json += "    ]\n";
  json += "  },\n";
  json += "  \"current\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    AppendJsonRow(&json, rows[i], i + 1 == rows.size());
  }
  json += "  ]\n}\n";

  FILE* f = std::fopen("BENCH_scale.json", "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_scale.json\n");
  }

  // Acceptance gates vs the recorded pre-PR-9 baseline: >=3x ops/cpu-sec at
  // 4k clients and >=50% fewer payload bytes copied per op. Informational
  // here; CI applies a non-blocking floor on top.
  for (const Row& r : rows) {
    for (const Row& b : kBaseline) {
      if (b.clients != r.clients) {
        continue;
      }
      const double speedup = r.ops_per_cpu_sec / b.ops_per_cpu_sec;
      const double copy_cut = 1.0 - r.copy_bytes_per_op / b.copy_bytes_per_op;
      std::printf("%zu clients: %.2fx ops/cpu-sec vs baseline, %.0f%% less copying%s\n",
                  r.clients, speedup, copy_cut * 100.0,
                  (r.clients == 4000 && speedup < 3.0) ? "  [BELOW 3x TARGET]" : "");
    }
  }
  // Flat-profile gate: fan-in scaling is "flat" when 25k clients retain at
  // least 0.6x the per-CPU-second throughput of 1k clients.
  const Row* r1k = nullptr;
  const Row* r25k = nullptr;
  for (const Row& r : rows) {
    if (r.clients == 1000) r1k = &r;
    if (r.clients == 25000) r25k = &r;
  }
  if (r1k != nullptr && r25k != nullptr) {
    const double flatness = r25k->ops_per_cpu_sec / r1k->ops_per_cpu_sec;
    std::printf("flatness: 25k clients at %.2fx of 1k ops/cpu-sec%s\n", flatness,
                flatness >= 0.6 ? " (meets 0.6x floor)" : "  [BELOW 0.6x FLOOR]");
  }
  return 0;
}
