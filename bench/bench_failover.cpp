// E13 -- primary/backup failover: client-visible unavailability and
// replication lag vs. WAL throughput.
//
// A primary ships every committed transaction to a warm backup and gates
// response release on the backup's acknowledgement (semi-synchronous
// replication). This harness drives a steady stream of durable server-side
// operations over a mobile link, kills the primary mid-stream, promotes
// the backup one detection delay later, and reports what the client saw:
//
//   * the unavailability window -- from the kill to the first operation
//     completion served by the backup;
//   * end-to-end latency before the kill (the price of waiting for the
//     backup's ack) and across the failover;
//   * replication lag at the primary (shipped-but-unacked transactions),
//     sampled while it was alive -- the work a failover could force the
//     backup to re-derive from resent requests;
//   * at-most-once across the handoff: every acknowledged token appears in
//     the backup's journal exactly once.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/fault_plan.h"
#include "src/core/toolkit.h"
#include "src/tclite/value.h"

using namespace rover;

namespace {

constexpr char kJournalCode[] = R"(
proc get {} { global state; return $state }
proc add {t} { global state; lappend state $t; return $state }
)";

constexpr double kKillAtSeconds = 15;
constexpr double kWindowSeconds = 30;

struct RunResult {
  uint64_t issued = 0;
  uint64_t ok = 0;
  uint64_t ok_after_kill = 0;
  double unavail_s = 0;  // kill -> first completion at/after promotion
  double pre_kill_p50_ms = 0;  // steady-state latency under semi-sync
  double pre_kill_max_ms = 0;
  double max_latency_ms = 0;  // worst end-to-end latency across the run
  uint64_t lag_max_txns = 0;  // max shipped-but-unacked txns at the primary
  double lag_mean_txns = 0;
  uint64_t shipped = 0;
  uint64_t bytes_shipped = 0;
  double wal_txn_per_s = 0;  // primary WAL commit throughput while alive
  bool at_most_once = false;
  double drain_s = 0;
};

RunResult Measure(const LinkProfile& profile, int calls_per_sec) {
  Testbed::Options topts;
  topts.server.durable = true;
  Testbed bed(topts);
  bed.loop()->set_event_limit(20'000'000);
  RoverServerNode* backup = bed.AddBackup("backup", LinkProfile::Ethernet10());
  if (!bed.server()->rover()->CreateObject(
          MakeRdo("journal", "lww", kJournalCode, "")).ok()) {
    std::fprintf(stderr, "create failed\n");
    return {};
  }

  ClientNodeOptions copts;
  copts.qrpc.failover_primary = "server";
  copts.qrpc.failover_backup = "backup";
  RoverClientNode* client = bed.AddClient("mobile", profile, nullptr, copts);
  bed.AddLink("mobile", "backup", profile);

  const TimePoint kill_at = TimePoint::Epoch() + Duration::Seconds(kKillAtSeconds);
  FaultPlan plan(bed.loop(), /*seed=*/1);
  FailoverOptions fopts;
  fopts.at = kill_at;
  plan.ScheduleFailover(bed.server(), backup, {client}, fopts);
  RunResult r;
  struct Call {
    TimePoint issued;
    TimePoint completed = TimePoint::FromMicros(0);
    bool ok = false;
  };
  std::vector<Call> calls;
  const int total = static_cast<int>(kWindowSeconds) * calls_per_sec;
  calls.reserve(total);
  for (int i = 0; i < total; ++i) {
    const TimePoint at = TimePoint::Epoch() +
                         Duration::Micros(1'000'000 + i * 1'000'000 / calls_per_sec);
    calls.push_back(Call{at});
    bed.loop()->ScheduleAt(at, [&, i] {
      InvokeOptions io;
      io.force_site = ExecutionSite::kServer;
      auto p = client->access()->Invoke(
          "journal", "add", {"tok" + std::to_string(i)}, io);
      p.OnReady([&, i](const InvokeResult& res) {
        calls[i].completed = bed.loop()->now();
        calls[i].ok = res.status.ok();
      });
    });
  }

  // Replication-lag sampler: shipped-but-unacked transactions at the
  // primary, every 100 ms while it is alive.
  std::vector<uint64_t> lag_samples;
  for (double t = 1; t < kKillAtSeconds; t += 0.1) {
    bed.loop()->ScheduleAt(TimePoint::Epoch() + Duration::Seconds(t), [&] {
      if (bed.server()->dead() || bed.server()->replication_sender() == nullptr) {
        return;
      }
      const ReplicationSender* s = bed.server()->replication_sender();
      lag_samples.push_back(s->last_shipped() - s->acked_watermark());
    });
  }


  // Snapshot sender stats at the moment of death (the object dies with the
  // primary's incarnation).
  bed.loop()->ScheduleAt(kill_at - Duration::Micros(1), [&] {
    const ReplicationSender* s = bed.server()->replication_sender();
    if (s != nullptr) {
      r.shipped = s->stats().transactions_shipped;
      r.bytes_shipped = s->stats().bytes_shipped;
    }
  });

  bed.Run();

  r.issued = calls.size();
  std::vector<double> pre_kill_ms;
  TimePoint first_after_kill = TimePoint::FromMicros(INT64_MAX);
  for (const Call& c : calls) {
    if (!c.ok) {
      continue;
    }
    ++r.ok;
    const double ms = (c.completed - c.issued).seconds() * 1e3;
    r.max_latency_ms = std::max(r.max_latency_ms, ms);
    if (c.completed < kill_at) {
      pre_kill_ms.push_back(ms);
    } else {
      ++r.ok_after_kill;
      // Responses the primary released before dying can still land after
      // the kill; recovery is marked by the first completion the promoted
      // backup could have served.
      if (c.completed >= kill_at + fopts.detection_delay) {
        first_after_kill = std::min(first_after_kill, c.completed);
      }
    }
  }
  if (!pre_kill_ms.empty()) {
    std::sort(pre_kill_ms.begin(), pre_kill_ms.end());
    r.pre_kill_p50_ms = pre_kill_ms[pre_kill_ms.size() / 2];
    r.pre_kill_max_ms = pre_kill_ms.back();
  }
  if (first_after_kill != TimePoint::FromMicros(INT64_MAX)) {
    r.unavail_s = (first_after_kill - kill_at).seconds();
  }
  if (!lag_samples.empty()) {
    uint64_t sum = 0;
    for (uint64_t v : lag_samples) {
      r.lag_max_txns = std::max(r.lag_max_txns, v);
      sum += v;
    }
    r.lag_mean_txns = static_cast<double>(sum) / lag_samples.size();
  }
  r.wal_txn_per_s = static_cast<double>(r.shipped) / kKillAtSeconds;
  r.drain_s = (bed.loop()->now() - TimePoint::Epoch()).seconds();

  // At-most-once audit: every token at most once, every acked token present.
  auto obj = backup->store()->Get("journal");
  if (obj.ok()) {
    auto tokens = TclListSplit(obj->data);
    if (tokens.ok()) {
      std::vector<std::string> sorted(tokens->begin(), tokens->end());
      std::sort(sorted.begin(), sorted.end());
      const bool unique =
          std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
      bool acked_present = true;
      for (int i = 0; i < total; ++i) {
        if (calls[i].ok &&
            !std::binary_search(sorted.begin(), sorted.end(),
                                "tok" + std::to_string(i))) {
          acked_present = false;
        }
      }
      r.at_most_once = unique && acked_present;
    }
  }
  return r;
}

std::string FmtMs(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f ms", ms);
  return buf;
}

std::string FmtRate(double per_s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f/s", per_s);
  return buf;
}

}  // namespace

int main() {
  std::printf(
      "E13: primary/backup failover -- unavailability window and replication "
      "lag\n");
  std::printf(
      "workload: N durable server-side ops per second for 30 s; primary "
      "killed at 15 s,\nbackup promoted 200 ms later; semi-sync replication "
      "over a 10 Mb/s backbone\n");

  struct Row {
    std::string network;
    int rate;
    RunResult r;
  };
  std::vector<Row> rows;

  for (const LinkProfile& profile :
       {LinkProfile::WaveLan2(), LinkProfile::Cslip144()}) {
    BenchTable table(
        "Failover sweep over " + profile.name,
        {"rate", "ok", "post-kill ok", "unavail", "p50 pre-kill", "max lat",
         "lag max/mean (txn)", "wal txn/s", "shipped KB", "1x?", "drain"});
    for (int rate : {1, 2, 5, 10}) {
      RunResult r = Measure(profile, rate);
      rows.push_back(Row{profile.name, rate, r});
      char lag[64];
      std::snprintf(lag, sizeof(lag), "%llu / %.2f",
                    static_cast<unsigned long long>(r.lag_max_txns),
                    r.lag_mean_txns);
      table.AddRow({FmtCount(static_cast<uint64_t>(rate)), FmtCount(r.ok),
                    FmtCount(r.ok_after_kill), FmtSeconds(r.unavail_s),
                    FmtMs(r.pre_kill_p50_ms), FmtMs(r.max_latency_ms), lag,
                    FmtRate(r.wal_txn_per_s), FmtBytes(r.bytes_shipped),
                    r.at_most_once ? "yes" : "NO", FmtSeconds(r.drain_s)});
    }
    table.Print();
  }

  const char* json_path = "BENCH_failover.json";
  if (FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"failover\",\n  \"kill_at_s\": %g,\n"
                 "  \"window_seconds\": %g,\n  \"results\": [\n",
                 kKillAtSeconds, kWindowSeconds);
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(
          f,
          "    {\"network\": \"%s\", \"calls_per_s\": %d, \"issued\": %llu, "
          "\"ok\": %llu, \"ok_after_kill\": %llu, \"unavail_s\": %.3f, "
          "\"pre_kill_p50_ms\": %.2f, \"pre_kill_max_ms\": %.2f, "
          "\"max_latency_ms\": %.2f, \"repl_lag_max_txns\": %llu, "
          "\"repl_lag_mean_txns\": %.3f, \"wal_txn_per_s\": %.2f, "
          "\"txns_shipped\": %llu, \"bytes_shipped\": %llu, "
          "\"at_most_once\": %s, \"drain_s\": %.3f}%s\n",
          row.network.c_str(), row.rate,
          static_cast<unsigned long long>(row.r.issued),
          static_cast<unsigned long long>(row.r.ok),
          static_cast<unsigned long long>(row.r.ok_after_kill),
          row.r.unavail_s, row.r.pre_kill_p50_ms, row.r.pre_kill_max_ms,
          row.r.max_latency_ms,
          static_cast<unsigned long long>(row.r.lag_max_txns),
          row.r.lag_mean_txns, row.r.wal_txn_per_s,
          static_cast<unsigned long long>(row.r.shipped),
          static_cast<unsigned long long>(row.r.bytes_shipped),
          row.r.at_most_once ? "true" : "false", row.r.drain_s,
          i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }
  return 0;
}
