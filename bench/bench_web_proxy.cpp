// E6 -- Rover Web browser proxy: click-ahead and prefetch (paper §6.3).
//
// Workload: a scripted user random-walks an 80-page synthetic site
// (4 KiB mean pages, mean out-degree 6), 25 clicks. Configurations per
// network: blocking browser, click-ahead proxy, click-ahead + idle-time
// prefetch. The sweep over think time exposes the crossover the paper's
// delay-threshold heuristic encodes: prefetch pays once the think gap
// exceeds a page's transfer time.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/web.h"
#include "src/core/toolkit.h"

using namespace rover;

namespace {

BrowseSessionResult RunSession(const LinkProfile& profile, bool click_ahead,
                               bool prefetch, Duration think) {
  Testbed bed;
  SyntheticWebOptions web;
  web.page_count = 80;
  web.mean_content_bytes = 4096;
  BuildSyntheticWeb(bed.server(), web);

  RoverClientNode* node = bed.AddClient("laptop", profile);
  BrowserProxyOptions popts;
  popts.click_ahead = click_ahead;
  popts.prefetch_links = prefetch;
  popts.prefetch_fanout = 8;
  // Skip prefetching below ~8 Kbit/s: a 4 KiB page takes >14 s there and
  // prefetch traffic would only delay clicks (the paper's delay-threshold
  // heuristic plays this role).
  popts.min_prefetch_bandwidth_bps = 8e3;
  BrowserProxy proxy(bed.loop(), node, popts);

  // All configurations replay the same click path so the columns are
  // directly comparable (a live random walk diverges with timing).
  auto path = GenerateBrowsePath(bed.server(), "page/0", 25, 42);
  BrowseSessionOptions sopts;
  sopts.think_time_mean = think;
  sopts.seed = 42;
  BrowseSession session(bed.loop(), &proxy, sopts);
  auto done = session.RunPath(*path);
  bed.Run();
  return done.value();
}

std::string Cell(const BrowseSessionResult& r) {
  char buf[64];
  const double avg = r.pages_visited > 0
                         ? r.total_latency.seconds() / (double)r.pages_visited
                         : 0;
  std::snprintf(buf, sizeof(buf), "%.2fs (%zu hits)", avg, r.cache_hits);
  return buf;
}

}  // namespace

int main() {
  std::printf("E6: Web browser proxy, click-ahead + prefetch (paper §6.3)\n");
  std::printf("workload: 25 clicks over an 80-page site, 4 KiB mean pages\n");

  for (Duration think : {Duration::Seconds(3), Duration::Seconds(12)}) {
    char title[96];
    std::snprintf(title, sizeof(title),
                  "Mean user wait per click (think time %.0f s)", think.seconds());
    BenchTable table(title, {"network", "blocking browser", "click-ahead",
                             "click-ahead + prefetch"});
    for (const LinkProfile& profile : LinkProfile::PaperNetworks()) {
      table.AddRow({profile.name, Cell(RunSession(profile, false, false, think)),
                    Cell(RunSession(profile, true, false, think)),
                    Cell(RunSession(profile, true, true, think))});
    }
    table.Print();
  }

  // Disconnected browsing of cached pages: the paper's proxy serves
  // cached documents with no network at all.
  {
    Testbed bed;
    SyntheticWebOptions web;
    web.page_count = 20;
    BuildSyntheticWeb(bed.server(), web);
    RoverClientNode* node = bed.AddClient(
        "laptop", LinkProfile::WaveLan2(),
        std::make_unique<IntervalConnectivity>(
            std::vector<IntervalConnectivity::Interval>{
                {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(120)}}));
    BrowserProxy proxy(bed.loop(), node);
    for (int i = 0; i < 20; ++i) {
      proxy.Request("page/" + std::to_string(i)).Wait(bed.loop());
    }
    bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(200));
    double total = 0;
    for (int i = 0; i < 20; ++i) {
      auto p = proxy.Request("page/" + std::to_string(i));
      p.Wait(bed.loop());
      total += p.value().latency.seconds();
    }
    std::printf("\ndisconnected replay of 20 cached pages: %s total "
                "(all served from the Rover cache)\n",
                FmtSeconds(total).c_str());
  }

  std::printf(
      "\nShape check: click-ahead never loses to blocking and wins when\n"
      "users click faster than pages arrive (short think, slow links).\n"
      "Prefetch dominates on WaveLAN and crosses over on dial-up once the\n"
      "think gap covers a page transfer -- the paper's threshold heuristic.\n");
  return 0;
}
