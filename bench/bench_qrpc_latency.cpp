// E1 -- QRPC vs. blocking RPC latency across the paper's four networks.
//
// Paper context (§7): null and small-payload RPCs measured over switched
// 10 Mbit/s Ethernet, 2 Mbit/s WaveLAN, and CSLIP over 14.4 / 2.4 Kbit/s
// dial-up. The table reports, per network:
//   * blocking RPC latency (unlogged request -> response),
//   * QRPC call-return time (marshal + stable-log flush: what the
//     application waits for),
//   * QRPC end-to-end time (request -> response including the log).
//
// Expected shape: call-return is a network-independent constant (the log
// flush), so the non-blocking win over blocking RPC grows as bandwidth
// falls; QRPC end-to-end pays a fixed log overhead that shrinks relative
// to transmission as networks slow (claim 2, measured in detail by E2).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/toolkit.h"

using namespace rover;

namespace {

struct Sample {
  double blocking_s = 0;
  double call_return_s = 0;
  double end_to_end_s = 0;
};

Sample Measure(const LinkProfile& profile, size_t payload_bytes, int iterations,
               std::string* metrics_dump = nullptr) {
  Testbed bed;
  bed.server()->qrpc()->RegisterHandler(
      "null", [](const RpcRequestBody&, const Message&, QrpcServer::Responder respond) {
        respond(RpcResponseBody{});
      });
  RoverClientNode* client = bed.AddClient("mobile", profile);

  std::vector<double> blocking;
  std::vector<double> call_return;
  std::vector<double> end_to_end;
  const std::string payload(payload_bytes, 'q');

  for (int i = 0; i < iterations; ++i) {
    // Blocking RPC: no log, caller waits for the response.
    {
      QrpcCallOptions opts;
      opts.log_request = false;
      const TimePoint start = bed.loop()->now();
      QrpcCall call = client->qrpc()->Call("server", "null", {payload}, opts);
      call.result.Wait(bed.loop());
      blocking.push_back((bed.loop()->now() - start).seconds());
    }
    // Queued RPC: logged; the application regains control at commit.
    {
      const TimePoint start = bed.loop()->now();
      QrpcCall call = client->qrpc()->Call("server", "null", {payload});
      call.committed.Wait(bed.loop());
      call_return.push_back((bed.loop()->now() - start).seconds());
      call.result.Wait(bed.loop());
      end_to_end.push_back((bed.loop()->now() - start).seconds());
    }
  }
  if (metrics_dump != nullptr) {
    *metrics_dump = client->metrics()->Render(obs::RenderFormat::kText);
  }
  return Sample{Mean(blocking), Mean(call_return), Mean(end_to_end)};
}

}  // namespace

int main() {
  constexpr int kIterations = 20;
  std::printf("E1: QRPC vs blocking RPC latency (paper §7, networks table)\n");
  std::printf("workload: %d iterations per cell; stable log flush base 8 ms\n",
              kIterations);

  struct Row {
    std::string network;
    size_t payload_bytes;
    Sample sample;
  };
  std::vector<Row> rows;

  for (size_t payload : {size_t{0}, size_t{1024}}) {
    BenchTable table(
        payload == 0 ? "Null RPC" : "RPC with 1 KiB argument",
        {"network", "blocking RPC", "QRPC call-return", "QRPC end-to-end",
         "non-blocking win"});
    for (const LinkProfile& profile : LinkProfile::PaperNetworks()) {
      Sample s = Measure(profile, payload, kIterations);
      rows.push_back(Row{profile.name, payload, s});
      table.AddRow({profile.name, FmtSeconds(s.blocking_s), FmtSeconds(s.call_return_s),
                    FmtSeconds(s.end_to_end_s),
                    FmtRatio(s.blocking_s / s.call_return_s)});
    }
    table.Print();
  }

  // Machine-readable copy of the table, one object per (network, payload)
  // cell, so runs can be diffed/tracked over time.
  const char* json_path = "BENCH_qrpc_latency.json";
  if (FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f, "{\n  \"bench\": \"qrpc_latency\",\n  \"iterations\": %d,\n"
                    "  \"results\": [\n", kIterations);
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"network\": \"%s\", \"payload_bytes\": %zu, "
                   "\"blocking_rpc_s\": %.6f, \"qrpc_call_return_s\": %.6f, "
                   "\"qrpc_end_to_end_s\": %.6f, \"non_blocking_win\": %.3f}%s\n",
                   r.network.c_str(), r.payload_bytes, r.sample.blocking_s,
                   r.sample.call_return_s, r.sample.end_to_end_s,
                   r.sample.blocking_s / r.sample.call_return_s,
                   i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }

  std::printf(
      "\nShape check: QRPC call-return is flat across networks (local log\n"
      "flush dominates), so the win over blocking RPC grows ~linearly as\n"
      "bandwidth drops -- the application never waits on the network.\n");

  // Unified metrics snapshot for one representative cell (WaveLAN, 1 KiB),
  // straight from the client node's registry.
  std::string metrics;
  Measure(LinkProfile::WaveLan2(), 1024, 20, &metrics);
  std::printf("\nmetrics snapshot (wavelan-2Mb, 1 KiB payload):\n%s", metrics.c_str());
  return 0;
}
