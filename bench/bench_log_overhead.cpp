// E2 -- Stable-log overhead per QRPC across networks.
//
// Paper claim 2 (§7): "For lower-bandwidth networks the overhead of
// writing the log is dwarfed by the underlying communication costs."
// The prototype put the flush on the critical path for message sending.
//
// For each network this harness measures end-to-end QRPC latency with the
// log enabled and disabled, attributing the difference to the log, and
// reports the log's share of total latency. It also sweeps the flush cost
// model (slow laptop disk vs. fast flash) as an ablation.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/toolkit.h"

using namespace rover;

namespace {

double EndToEnd(const LinkProfile& profile, const StableLogCostModel& costs,
                bool logged, int iterations) {
  Testbed bed;
  bed.server()->qrpc()->RegisterHandler(
      "null", [](const RpcRequestBody&, const Message&, QrpcServer::Responder respond) {
        respond(RpcResponseBody{});
      });
  ClientNodeOptions options;
  options.log_costs = costs;
  RoverClientNode* client = bed.AddClient("mobile", profile, nullptr, options);

  std::vector<double> samples;
  for (int i = 0; i < iterations; ++i) {
    QrpcCallOptions opts;
    opts.log_request = logged;
    const TimePoint start = bed.loop()->now();
    QrpcCall call = client->qrpc()->Call("server", "null",
                                         {std::string(256, 'x')}, opts);
    call.result.Wait(bed.loop());
    samples.push_back((bed.loop()->now() - start).seconds());
  }
  return Mean(samples);
}

}  // namespace

int main() {
  std::printf("E2: stable-log overhead per QRPC (paper §7 claim 2, §5.2)\n");
  std::printf("workload: 256 B requests, 20 iterations per cell\n");

  struct Device {
    const char* name;
    StableLogCostModel model;
  };
  Device devices[] = {
      {"disk (8ms sync)", {}},
      {"flash (1ms sync)", {Duration::Millis(1), 8e6}},
  };

  for (const Device& device : devices) {
    BenchTable table(std::string("Stable store: ") + device.name,
                     {"network", "QRPC w/o log", "QRPC w/ log", "log overhead",
                      "share of total"});
    for (const LinkProfile& profile : LinkProfile::PaperNetworks()) {
      const double without = EndToEnd(profile, device.model, false, 20);
      const double with = EndToEnd(profile, device.model, true, 20);
      const double overhead = with - without;
      table.AddRow({profile.name, FmtSeconds(without), FmtSeconds(with),
                    FmtSeconds(overhead), FmtPercent(overhead / with)});
    }
    table.Print();
  }

  std::printf(
      "\nShape check: the flush is a visible fraction of a null RPC on\n"
      "Ethernet but is dwarfed by transmission on the dial-up links --\n"
      "matching the paper's claim that logging is cheap exactly where\n"
      "queued operation matters most.\n");
  return 0;
}
