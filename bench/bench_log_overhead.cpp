// E2 -- Stable-log overhead per QRPC across networks.
//
// Paper claim 2 (§7): "For lower-bandwidth networks the overhead of
// writing the log is dwarfed by the underlying communication costs."
// The prototype put the flush on the critical path for message sending.
//
// For each network this harness measures end-to-end QRPC latency with the
// log enabled and disabled, attributing the difference to the log, and
// reports the log's share of total latency. It also sweeps the flush cost
// model (slow laptop disk vs. fast flash) as an ablation.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/core/toolkit.h"

using namespace rover;

namespace {

double EndToEnd(const LinkProfile& profile, const StableLogCostModel& costs,
                bool logged, int iterations,
                DiskFaultOptions disk_faults = {},
                uint64_t* flush_retries = nullptr) {
  Testbed bed;
  bed.server()->qrpc()->RegisterHandler(
      "null", [](const RpcRequestBody&, const Message&, QrpcServer::Responder respond) {
        respond(RpcResponseBody{});
      });
  ClientNodeOptions options;
  options.log_costs = costs;
  options.disk_faults = disk_faults;
  RoverClientNode* client = bed.AddClient("mobile", profile, nullptr, options);

  std::vector<double> samples;
  for (int i = 0; i < iterations; ++i) {
    QrpcCallOptions opts;
    opts.log_request = logged;
    const TimePoint start = bed.loop()->now();
    QrpcCall call = client->qrpc()->Call("server", "null",
                                         {std::string(256, 'x')}, opts);
    call.result.Wait(bed.loop());
    samples.push_back((bed.loop()->now() - start).seconds());
  }
  if (flush_retries != nullptr) {
    *flush_retries = client->log()->stats().flush_retries;
  }
  return Mean(samples);
}

// Merges a "flush_retry_overhead" object into BENCH_qrpc_latency.json
// (created by bench_qrpc_latency; a fresh file is written when it does not
// exist). Idempotent: a previous flush_retry_overhead block is replaced.
void MergeRetryOverheadJson(double clean_s, double p05_s, double p10_s,
                            uint64_t p05_retries, uint64_t p10_retries) {
  const char* json_path = "BENCH_qrpc_latency.json";
  std::string existing;
  if (FILE* f = std::fopen(json_path, "r")) {
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      existing.append(buf, n);
    }
    std::fclose(f);
  }
  const size_t cut = existing.find(",\n  \"flush_retry_overhead\"");
  if (cut != std::string::npos) {
    existing.erase(cut);
    existing += "\n}\n";
  }
  std::string head;
  const size_t brace = existing.rfind('}');
  if (brace == std::string::npos) {
    head = "{\n  \"bench\": \"qrpc_latency\"";
  } else {
    head = existing.substr(0, brace);
    while (!head.empty() && (head.back() == '\n' || head.back() == ' ')) {
      head.pop_back();
    }
  }
  if (FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "%s,\n  \"flush_retry_overhead\": {\"network\": \"wavelan-2Mb\", "
                 "\"clean_s\": %.6f, \"p05_s\": %.6f, \"p10_s\": %.6f, "
                 "\"p05_overhead\": %.4f, \"p10_overhead\": %.4f, "
                 "\"p05_retries\": %llu, \"p10_retries\": %llu}\n}\n",
                 head.c_str(), clean_s, p05_s, p10_s,
                 p05_s / clean_s - 1.0, p10_s / clean_s - 1.0,
                 static_cast<unsigned long long>(p05_retries),
                 static_cast<unsigned long long>(p10_retries));
    std::fclose(f);
    std::printf("\nmerged flush_retry_overhead into %s\n", json_path);
  }
}

}  // namespace

int main() {
  std::printf("E2: stable-log overhead per QRPC (paper §7 claim 2, §5.2)\n");
  std::printf("workload: 256 B requests, 20 iterations per cell\n");

  struct Device {
    const char* name;
    StableLogCostModel model;
  };
  Device devices[] = {
      {"disk (8ms sync)", {}},
      {"flash (1ms sync)", {Duration::Millis(1), 8e6}},
  };

  for (const Device& device : devices) {
    BenchTable table(std::string("Stable store: ") + device.name,
                     {"network", "QRPC w/o log", "QRPC w/ log", "log overhead",
                      "share of total"});
    for (const LinkProfile& profile : LinkProfile::PaperNetworks()) {
      const double without = EndToEnd(profile, device.model, false, 20);
      const double with = EndToEnd(profile, device.model, true, 20);
      const double overhead = with - without;
      table.AddRow({profile.name, FmtSeconds(without), FmtSeconds(with),
                    FmtSeconds(overhead), FmtPercent(overhead / with)});
    }
    table.Print();
  }

  std::printf(
      "\nShape check: the flush is a visible fraction of a null RPC on\n"
      "Ethernet but is dwarfed by transmission on the dial-up links --\n"
      "matching the paper's claim that logging is cheap exactly where\n"
      "queued operation matters most.\n");

  // Ablation: a flaky device retries transient write errors with bounded
  // jittered backoff. Measure what that retry machinery costs end to end
  // at representative error rates, on the representative network.
  {
    constexpr int kFaultIterations = 60;
    const LinkProfile wavelan = LinkProfile::WaveLan2();
    BenchTable table("Flush retry overhead (wavelan-2Mb, disk 8ms sync)",
                     {"write error prob", "QRPC w/ log", "overhead vs clean",
                      "flush retries"});
    const double clean = EndToEnd(wavelan, {}, true, kFaultIterations);
    table.AddRow({"0.00", FmtSeconds(clean), "--", "0"});
    double faulty_s[2] = {0, 0};
    uint64_t retries[2] = {0, 0};
    const double probs[2] = {0.05, 0.10};
    for (int i = 0; i < 2; ++i) {
      DiskFaultOptions faults;
      faults.seed = 42 + static_cast<uint64_t>(i);
      faults.transient_write_error_prob = probs[i];
      faulty_s[i] = EndToEnd(wavelan, {}, true, kFaultIterations, faults,
                             &retries[i]);
      char prob_label[16];
      std::snprintf(prob_label, sizeof(prob_label), "%.2f", probs[i]);
      table.AddRow({prob_label, FmtSeconds(faulty_s[i]),
                    FmtPercent(faulty_s[i] / clean - 1.0),
                    std::to_string(retries[i])});
    }
    table.Print();
    MergeRetryOverheadJson(clean, faulty_s[0], faulty_s[1], retries[0],
                           retries[1]);
    std::printf(
        "Shape check: single-digit error rates cost at most a few percent\n"
        "end to end -- each retry re-pays one flush sync, which the paper's\n"
        "networks already dwarf with transmission time.\n");
  }
  return 0;
}
