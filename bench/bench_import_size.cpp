// E8 -- Import latency vs. object size, with compression and batching
// ablations.
//
// Paper context: Rover imports whole objects; the evaluation measures
// object fetches across the four networks, and §5 notes the prototype
// "does not perform any compression on the log" -- leaving an obvious
// optimization on the table for slow links. This harness measures:
//   * import latency for object sizes 256 B .. 256 KiB per network,
//   * the effect of payload compression (text-like compressible data),
//   * the effect of request batching when importing many small objects.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/toolkit.h"

using namespace rover;

namespace {

constexpr char kDocCode[] = "proc content {} { global state; return $state }";

std::string TextPayload(size_t bytes) {
  static const char* kWords[] = {"From: rover@lcs ", "Subject: queued rpc ",
                                 "Content-Type: text/html ", "<a href=page>",
                                 "the toolkit ", "mobile host "};
  Rng rng(17);
  std::string out;
  out.reserve(bytes + 32);
  while (out.size() < bytes) {
    out += kWords[rng.NextBelow(6)];
  }
  out.resize(bytes);
  return out;
}

double ImportOnce(const LinkProfile& profile, size_t bytes, bool compress) {
  // Compression must be enabled on both ends: requests compress at the
  // client's scheduler, responses (the object payload) at the server's.
  Testbed::Options bed_options;
  bed_options.server.scheduler.compress = compress;
  Testbed bed(bed_options);
  bed.server()->rover()->CreateObject(MakeRdo("doc", "lww", kDocCode,
                                              TextPayload(bytes)));
  ClientNodeOptions options;
  options.scheduler.compress = compress;
  RoverClientNode* client = bed.AddClient("mobile", profile, nullptr, options);
  const TimePoint start = bed.loop()->now();
  auto p = client->access()->Import("doc");
  p.Wait(bed.loop());
  return (bed.loop()->now() - start).seconds();
}

// Time until a burst of `count` QRPCs is durably committed (call-return),
// with and without group commit [Hagmann 87] -- the log optimization the
// paper's prototype explicitly skipped (§5.2).
double CommitBurst(int count, bool group_commit) {
  Testbed bed;
  ClientNodeOptions options;
  options.log_costs.group_commit = group_commit;
  RoverClientNode* client =
      bed.AddClient("mobile", LinkProfile::WaveLan2(), nullptr, options);
  std::vector<QrpcCall> calls;
  for (int i = 0; i < count; ++i) {
    calls.push_back(client->qrpc()->Call("server", "noop", {int64_t{i}}));
  }
  const TimePoint start = bed.loop()->now();
  for (auto& call : calls) {
    call.committed.Wait(bed.loop());
  }
  return (bed.loop()->now() - start).seconds();
}

}  // namespace

int main() {
  std::printf("E8: import latency vs object size; compression & batching ablations\n");

  BenchTable size_table("Import latency by object size (uncompressed)",
                        {"network", "256 B", "4 KiB", "32 KiB", "256 KiB"});
  for (const LinkProfile& profile : LinkProfile::PaperNetworks()) {
    std::vector<std::string> row = {profile.name};
    for (size_t bytes : {size_t{256}, size_t{4096}, size_t{32768}, size_t{262144}}) {
      row.push_back(FmtSeconds(ImportOnce(profile, bytes, false)));
    }
    size_table.AddRow(row);
  }
  size_table.Print();

  BenchTable comp_table("Compression ablation: 32 KiB text-like object",
                        {"network", "uncompressed", "compressed", "speedup"});
  for (const LinkProfile& profile : LinkProfile::PaperNetworks()) {
    const double plain = ImportOnce(profile, 32768, false);
    const double packed = ImportOnce(profile, 32768, true);
    comp_table.AddRow({profile.name, FmtSeconds(plain), FmtSeconds(packed),
                       FmtRatio(plain / packed)});
  }
  comp_table.Print();

  BenchTable commit_table(
      "Group-commit ablation: time to durably queue a burst of QRPCs",
      {"burst size", "serial flushes", "group commit", "speedup"});
  for (int burst : {4, 16, 64}) {
    const double serial = CommitBurst(burst, false);
    const double grouped = CommitBurst(burst, true);
    commit_table.AddRow({FmtCount(static_cast<uint64_t>(burst)), FmtSeconds(serial),
                         FmtSeconds(grouped), FmtRatio(serial / grouped)});
  }
  commit_table.Print();

  std::printf(
      "\nShape check: import time scales with size/bandwidth once past the\n"
      "fixed RPC cost; compression buys ~the compression ratio on dial-up\n"
      "links and little on Ethernet. Group commit collapses a burst's N\n"
      "serial log syncs to ~2, recovering the optimization the paper's\n"
      "prototype left out (§5.2, citing Hagmann's group commit).\n");
  return 0;
}
