// TcLite script runner: executes RDO-style TcLite code outside the
// toolkit, for developing and debugging object methods.
//
//   $ ./tclite_run script.tcl        # run a file
//   $ echo 'puts [expr {6*7}]' | ./tclite_run   # or stdin
//
// The interpreter runs with the same sandbox limits RDOs get, plus the
// rover-* host commands stubbed for standalone use. With no input, runs a
// small self-demonstration.

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/tclite/interp.h"

using namespace rover;

namespace {

constexpr char kDemo[] = R"(
# A taste of TcLite: the language RDOs are written in.
proc fib {n} {
  if {$n < 2} { return $n }
  return [expr {[fib [expr {$n - 1}]] + [fib [expr {$n - 2}]]}]
}
puts "fib(15) = [fib 15]"

set calendar [dict set {} mon-10am "design review"]
set calendar [dict set $calendar tue-2pm "SOSP dry run"]
foreach slot [dict keys $calendar] {
  puts "$slot -> [dict get $calendar $slot]"
}

set msgs {}
for {set i 0} {$i < 3} {incr i} { lappend msgs "message-$i" }
puts "inbox: [join $msgs {, }]"
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "tclite_run: cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  } else if (!isatty(0)) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    source = buffer.str();
  }
  if (source.empty()) {
    source = kDemo;
    std::printf("(no script given; running the built-in demo)\n\n");
  }

  ExecLimits limits;
  limits.max_commands = 10'000'000;
  Interp interp(limits);
  // Standalone stubs for the host commands RDOs see inside the toolkit.
  interp.RegisterCommand("rover-host", [](Interp*, const std::vector<std::string>&) {
    return EvalResult::Ok("standalone");
  });
  interp.RegisterCommand("rover-now", [](Interp*, const std::vector<std::string>&) {
    return EvalResult::Ok("0");
  });
  interp.RegisterCommand("rover-log", [](Interp* i, const std::vector<std::string>& args) {
    for (size_t k = 1; k < args.size(); ++k) {
      std::fprintf(stderr, "%s%s", k > 1 ? " " : "[rover-log] ", args[k].c_str());
    }
    std::fprintf(stderr, "\n");
    return EvalResult::Ok();
  });

  auto result = interp.Run(source);
  std::fputs(interp.TakeOutput().c_str(), stdout);
  if (!result.ok()) {
    std::fprintf(stderr, "tclite_run: error: %s\n",
                 std::string(result.status().message()).c_str());
    return 1;
  }
  if (!result->empty()) {
    std::printf("=> %s\n", result->c_str());
  }
  return 0;
}
