// Shared calendar with conflict resolution (Rover Ical scenario, §6.2).
//
// Two users book meetings in the same group calendar while both are away
// from the network. On reconnection, non-overlapping bookings merge
// automatically (type-specific conflict resolution); a genuine double
// booking is reflected back to the second user, who moves the meeting.
//
//   $ ./shared_calendar

#include <cstdio>

#include "src/apps/calendar.h"
#include "src/core/toolkit.h"

using namespace rover;

namespace {

std::unique_ptr<ConnectivitySchedule> UpThenGap(double up_until, double back_at) {
  return std::make_unique<IntervalConnectivity>(
      std::vector<IntervalConnectivity::Interval>{
          {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(up_until)},
          {TimePoint::Epoch() + Duration::Seconds(back_at),
           TimePoint::Epoch() + Duration::Seconds(1e7)}});
}

}  // namespace

int main() {
  Testbed bed;
  CreateCalendar(bed.server(), "group");

  RoverClientNode* node_a =
      bed.AddClient("anthony", LinkProfile::WaveLan2(), UpThenGap(10, 300));
  RoverClientNode* node_b =
      bed.AddClient("frans", LinkProfile::Cslip144(), UpThenGap(10, 600));
  CalendarApp cal_a(bed.loop(), node_a, "group");
  CalendarApp cal_b(bed.loop(), node_b, "group");

  std::printf("== both import the calendar while connected ==\n");
  cal_a.Open().Wait(bed.loop());
  cal_b.Open().Wait(bed.loop());

  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(30));
  std::printf("== both now offline; booking locally ==\n");
  cal_a.Book("mon-10am", "toolkit design review").Wait(bed.loop());
  cal_a.Book("wed-2pm", "SOSP dry run").Wait(bed.loop());
  cal_b.Book("tue-9am", "faculty meeting").Wait(bed.loop());
  cal_b.Book("mon-10am", "quals committee").Wait(bed.loop());  // collision!

  auto sync_a = cal_a.Sync();
  auto sync_b = cal_b.Sync();
  std::printf("  anthony queued %zu ops; frans queued %zu ops\n",
              node_a->transport()->scheduler()->TotalQueueDepth(),
              node_b->transport()->scheduler()->TotalQueueDepth());

  std::printf("== anthony reconnects at t=300s ==\n");
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(400));
  std::printf("  anthony sync: %s (v%llu)\n", sync_a.value().status.ToString().c_str(),
              (unsigned long long)sync_a.value().new_version);

  std::printf("== frans reconnects at t=600s ==\n");
  bed.Run();
  std::printf("  frans sync: %s\n", sync_b.value().status.ToString().c_str());
  if (sync_b.value().status.code() == StatusCode::kConflict) {
    auto conflicts = cal_b.ConflictingSlots();
    std::printf("  conflicting slots: %s -- rebooking at mon-11am\n",
                TclListJoin(*conflicts).c_str());
    cal_b.Cancel("mon-10am").Wait(bed.loop());
    cal_b.Book("mon-11am", "quals committee").Wait(bed.loop());
    auto retry = cal_b.Sync();
    bed.Run();
    std::printf("  retry sync: %s (resolved-merge=%d)\n",
                retry.value().status.ToString().c_str(), retry.value().server_resolved);
  }

  std::printf("== final committed calendar ==\n  %s\n",
              bed.server()->store()->Get(CalendarObject("group"))->data.c_str());
  std::printf("server stats: %llu resolved / %llu unresolved conflicts\n",
              (unsigned long long)bed.server()->store()->stats().resolved_conflicts,
              (unsigned long long)bed.server()->store()->stats().unresolved_conflicts);
  return 0;
}
