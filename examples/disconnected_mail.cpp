// Disconnected mail (Rover Exmh scenario, paper §6.1).
//
// A commuter docks at the office in the morning, prefetches the inbox over
// Ethernet, reads and replies on the train over *no* connectivity, briefly
// gets a 14.4 Kbit/s dial-up window at home, and everything reconciles.
//
//   $ ./disconnected_mail

#include <cstdio>

#include "src/apps/mail.h"
#include "src/core/toolkit.h"

using namespace rover;

int main() {
  Testbed bed;
  MailService service(bed.server());
  service.CreateFolder("inbox");
  for (int i = 0; i < 12; ++i) {
    MailMessage m;
    m.id = std::to_string(i);
    m.from = (i % 3 == 0) ? "gifford@lcs.mit.edu" : "josh@lcs.mit.edu";
    m.to = "adj@lcs.mit.edu";
    m.subject = "status report " + std::to_string(i);
    m.date = "1995-12-0" + std::to_string(1 + i % 9);
    m.body = std::string("Long body for message ") + std::to_string(i) + "\n" +
             std::string(2048, 'x');
    service.DeliverLocal("inbox", m);
  }

  // Two links with disjoint schedules: office Ethernet (docked, t<120s)
  // and home dial-up (t>1800s).
  bed.AddClient("laptop", LinkProfile::Ethernet10(),
                std::make_unique<IntervalConnectivity>(
                    std::vector<IntervalConnectivity::Interval>{
                        {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(120)}}));
  RoverClientNode* laptop = bed.AddClient(
      "laptop", LinkProfile::Cslip144(),
      std::make_unique<PeriodicConnectivity>(Duration::Seconds(1e6), Duration::Zero(),
                                             TimePoint::Epoch() + Duration::Seconds(1800)));
  MailReader reader(bed.loop(), laptop);

  std::printf("== 9:00 docked on Ethernet: scan + prefetch inbox ==\n");
  auto folder = reader.OpenFolder("inbox");
  folder.Wait(bed.loop());
  reader.PrefetchFolder("inbox");
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(119));
  std::printf("  cached %zu objects (%zu bytes) before undocking\n",
              laptop->access()->CachedObjectCount(), laptop->access()->CacheBytes());

  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(200));
  std::printf("== 9:05 on the train: disconnected (connected=%d) ==\n",
              laptop->access()->Connected());

  // Read everything and reply to two messages -- all offline.
  auto ids = reader.ListMessages("inbox");
  for (const std::string& id : *ids) {
    auto body = reader.ReadMessage("inbox", id);
    body.Wait(bed.loop());
    std::printf("  read %s: %s\n", id.c_str(), reader.Summary("inbox", id)->c_str());
  }
  MailMessage reply;
  reply.id = "reply-1";
  reply.from = "adj@lcs.mit.edu";
  reply.to = "josh@lcs.mit.edu";
  reply.subject = "Re: status report 1";
  reply.date = "1995-12-03";
  reply.body = "Numbers look right, ship it.";
  QrpcCall sent = reader.Send("josh-inbox", reply);
  reader.SyncReadMarks("inbox");
  std::printf("  queued 1 reply + %zu read-marks (queue depth %zu)\n",
              laptop->access()->TentativeCount(),
              laptop->transport()->scheduler()->TotalQueueDepth());

  std::printf("== 18:30 home dial-up window opens ==\n");
  bed.Run();
  std::printf("  reply delivered: %s (at t=%.0fs)\n",
              sent.result.value().status.ToString().c_str(),
              sent.result.value().completed_at.seconds());
  std::printf("  server delivered-count=%llu, read-marks committed, tentative=%zu\n",
              (unsigned long long)service.delivered_count(),
              laptop->access()->TentativeCount());
  return 0;
}
