// Non-blocking Web browsing over a slow link (Rover proxy, paper §6.3).
//
// Compares three browser configurations over a 14.4 Kbit/s dial-up line on
// the same scripted browsing session:
//   1. blocking      -- conventional browser, one request at a time
//   2. click-ahead   -- Rover proxy queues requests; user keeps clicking
//   3. + prefetch    -- proxy also prefetches linked pages
//
//   $ ./web_clickahead

#include <cstdio>

#include "src/apps/web.h"
#include "src/core/toolkit.h"

using namespace rover;

namespace {

BrowseSessionResult RunSession(const LinkProfile& profile, bool click_ahead,
                               bool prefetch) {
  Testbed bed;
  SyntheticWebOptions web;
  web.page_count = 80;
  web.mean_content_bytes = 4096;
  BuildSyntheticWeb(bed.server(), web);

  RoverClientNode* node = bed.AddClient("laptop", profile);
  BrowserProxyOptions popts;
  popts.click_ahead = click_ahead;
  popts.prefetch_links = prefetch;
  popts.prefetch_fanout = 8;
  BrowserProxy proxy(bed.loop(), node, popts);

  BrowseSessionOptions sopts;
  sopts.clicks = 25;
  sopts.think_time_mean = Duration::Seconds(12);
  sopts.seed = 42;
  BrowseSession session(bed.loop(), &proxy, sopts);
  auto done = session.Run("page/0");
  bed.Run();
  return done.value();
}

void Report(const char* label, const BrowseSessionResult& r) {
  const double avg =
      r.pages_visited > 0 ? r.total_latency.seconds() / (double)r.pages_visited : 0;
  std::printf("  %-22s pages=%2zu hits=%2zu  avg user wait=%6.2fs  session=%6.1fs\n",
              label, r.pages_visited, r.cache_hits, avg, r.session_duration.seconds());
}

}  // namespace

int main() {
  for (const LinkProfile& profile :
       {LinkProfile::WaveLan2(), LinkProfile::Cslip144()}) {
    std::printf("Browsing 25 clicks over %s:\n", profile.name.c_str());
    Report("blocking browser", RunSession(profile, false, false));
    Report("click-ahead proxy", RunSession(profile, true, false));
    Report("click-ahead+prefetch", RunSession(profile, true, true));
  }
  std::printf("\nClick-ahead lets requests overlap instead of blocking the user;\n"
              "idle-time prefetch turns think time into cache hits. The win\n"
              "depends on page airtime vs. think time: on WaveLAN a page ships\n"
              "in milliseconds, so nearly every click hits the cache; at\n"
              "14.4 Kbit/s (~2.3s per page) prefetch only pays off when users\n"
              "dwell longer than a page's transfer time -- which is why the\n"
              "paper's proxy gates prefetching on a user-specified delay\n"
              "threshold. bench_web_proxy sweeps this trade-off.\n");
  return 0;
}
