// Observability walkthrough: runs a mobile client through a disconnect/
// reconnect cycle and dumps the unified metrics registry (text and JSON)
// plus the per-RPC lifecycle trace. Each QRPC's span shows the queued-RPC
// pipeline from the paper: enqueued -> logged -> flushed (durable) ->
// transmitted (once per send attempt) -> responded.

#include <cstdio>

#include "src/core/toolkit.h"

using namespace rover;

int main() {
  Testbed bed;

  // WaveLAN coverage for the first 5 seconds, a 25-second dead zone, then
  // coverage again. Calls issued during the outage queue at the scheduler.
  auto at = [](double s) { return TimePoint::Epoch() + Duration::Seconds(s); };
  std::vector<IntervalConnectivity::Interval> up = {
      {at(0), at(5)},
      {at(30), at(600)},
  };
  RoverClientNode* client =
      bed.AddClient("mobile", LinkProfile::WaveLan2(),
                    std::make_unique<IntervalConnectivity>(up));

  bed.server()->qrpc()->RegisterHandler(
      "echo", [](const RpcRequestBody& req, const Message&, QrpcServer::Responder respond) {
        RpcResponseBody body;
        body.result = req.args.empty() ? RpcValue(std::string("")) : req.args[0];
        respond(body);
      });

  // One call while connected, two while disconnected (they ride out the
  // outage in the stable log + scheduler queue).
  client->qrpc()->Call("server", "echo", {std::string("while connected")});
  bed.loop()->ScheduleAt(at(10), [client] {
    client->qrpc()->Call("server", "echo", {std::string("queued during outage")});
    client->qrpc()->Call("server", "echo", {std::string("also queued")});
  });

  bed.RunFor(Duration::Seconds(120));

  std::printf("== client metrics (text) ==\n%s\n",
              client->metrics()->Render(obs::RenderFormat::kText).c_str());
  std::printf("== client metrics (json) ==\n%s\n\n",
              client->metrics()->Render(obs::RenderFormat::kJson).c_str());
  std::printf("== server metrics (text) ==\n%s\n",
              bed.server()->metrics()->Render(obs::RenderFormat::kText).c_str());
  std::printf("== rpc lifecycle trace ==\n%s",
              client->tracer()->Render().c_str());
  return 0;
}
