// Observability walkthrough: runs a mobile client through a disconnect/
// reconnect cycle and dumps the unified metrics registry (text and JSON)
// plus the per-RPC lifecycle trace. Each QRPC's span shows the queued-RPC
// pipeline from the paper: enqueued -> logged -> flushed (durable) ->
// transmitted (once per send attempt) -> responded. The workload also
// exercises the bandwidth hot path so the delta-import, operation-
// coalescing, and log-compression counters all show live values.

#include <cstdio>

#include "src/core/toolkit.h"

using namespace rover;

int main() {
  Testbed bed;

  // WaveLAN coverage for the first 5 seconds, a 25-second dead zone, then
  // coverage again. Calls issued during the outage queue at the scheduler.
  auto at = [](double s) { return TimePoint::Epoch() + Duration::Seconds(s); };
  std::vector<IntervalConnectivity::Interval> up = {
      {at(0), at(5)},
      {at(30), at(600)},
  };
  ClientNodeOptions copts;
  copts.log_costs.compress_log = true;  // show the compression counters too
  RoverClientNode* client =
      bed.AddClient("mobile", LinkProfile::WaveLan2(),
                    std::make_unique<IntervalConnectivity>(up), copts);

  // An object to import/edit/re-import: its second fetch arrives as a
  // delta against the cached copy.
  std::string body(2048, 'm');
  bed.server()->rover()->CreateObject(MakeRdo(
      "inbox", "lww",
      "proc read {} { global state; return $state }\n"
      "proc put {s} { global state; set state $s; return ok }",
      body));

  bed.server()->qrpc()->RegisterHandler(
      "echo", [](const RpcRequestBody& req, const Message&, QrpcServer::Responder respond) {
        RpcResponseBody body;
        body.result = req.args.empty() ? RpcValue(std::string("")) : req.args[0];
        respond(body);
      });

  // One call while connected, two while disconnected (they ride out the
  // outage in the stable log + scheduler queue).
  client->qrpc()->Call("server", "echo", {std::string("while connected")});
  bed.loop()->ScheduleAt(at(10), [client] {
    client->qrpc()->Call("server", "echo", {std::string("queued during outage")});
    client->qrpc()->Call("server", "echo", {std::string("also queued")});
  });

  // Import while connected, then re-import after a server-side edit: the
  // refetch negotiates a delta against the cached version.
  client->access()->Import("inbox");
  bed.loop()->ScheduleAt(at(2), [&bed, body] {
    RdoDescriptor next = *bed.server()->store()->Get("inbox");
    next.data = "From: new-message\n" + body;
    bed.server()->store()->Put(next);
  });
  bed.loop()->ScheduleAt(at(3), [client] {
    ImportOptions refetch;
    refetch.allow_cached = false;
    client->access()->Import("inbox", refetch);
  });

  // During the outage, two supersedable edits of the same object: the
  // queued predecessor export is coalesced away.
  bed.loop()->ScheduleAt(at(12), [client] {
    client->access()->Invoke("inbox", "put", {std::string("draft one")});
    client->access()->Export("inbox");
  });
  bed.loop()->ScheduleAt(at(13), [client] {
    client->access()->Invoke("inbox", "put", {std::string("draft two")});
    client->access()->Export("inbox");
  });

  bed.RunFor(Duration::Seconds(120));

  std::printf("== client metrics (text) ==\n%s\n",
              client->metrics()->Render(obs::RenderFormat::kText).c_str());
  std::printf("== client metrics (json) ==\n%s\n\n",
              client->metrics()->Render(obs::RenderFormat::kJson).c_str());
  std::printf("== server metrics (text) ==\n%s\n",
              bed.server()->metrics()->Render(obs::RenderFormat::kText).c_str());
  std::printf("== rpc lifecycle trace ==\n%s",
              client->tracer()->Render().c_str());
  return 0;
}
