// Code shipping with RDOs (paper §4): the same object executes at the
// client or the server depending on link quality, and new code can be
// shipped to the server at run time.
//
// Scenario: a log-search RDO over a large server-side dataset. On
// Ethernet, invoking at the server is cheap. On a 2.4 Kbit/s line, Rover's
// adaptive policy runs a cached copy locally -- and when the query only
// needs a tiny answer from big data, we instead ship a *filter* RDO to the
// server so only the answer crosses the wire.
//
//   $ ./code_shipping

#include <cstdio>

#include "src/core/toolkit.h"

using namespace rover;

namespace {

// A "log file" RDO: state is a list of entries; grep returns matches.
const char* kLogCode = R"(
  proc entries {} { global state; return [llength $state] }
  proc grep {pattern} {
    global state
    set out {}
    foreach line $state {
      if {[string match $pattern $line]} { lappend out $line }
    }
    return $out
  }
  proc count-matches {pattern} { return [llength [grep $pattern]] }
)";

std::string BuildLog(int entries) {
  std::vector<std::string> lines;
  Rng rng(99);
  for (int i = 0; i < entries; ++i) {
    const char* level = (rng.NextBelow(20) == 0) ? "ERROR" : "INFO";
    lines.push_back(std::string(level) + " event-" + std::to_string(i));
  }
  return TclListJoin(lines);
}

void Demo(const char* label, LinkProfile profile) {
  Testbed bed;
  bed.server()->rover()->CreateObject(MakeRdo("logs/router", "lww", kLogCode,
                                              BuildLog(2000)));
  RoverClientNode* laptop = bed.AddClient("laptop", std::move(profile));

  // Import ships code+data to the client (expensive on slow links, paid
  // once); afterwards queries are local.
  const TimePoint t0 = bed.loop()->now();
  laptop->access()->Import("logs/router").Wait(bed.loop());
  const double import_s = (bed.loop()->now() - t0).seconds();

  const TimePoint t1 = bed.loop()->now();
  auto q = laptop->access()->Invoke("logs/router", "count-matches", {"ERROR*"});
  q.Wait(bed.loop());
  const double query_s = (bed.loop()->now() - t1).seconds();

  std::printf("  %-16s import=%8.2fs  query=%8.4fs  executed at %s -> %s errors\n",
              label, import_s, query_s, ExecutionSiteName(q.value().site),
              q.value().value.c_str());
}

}  // namespace

int main() {
  std::printf("Adaptive execution site for a 2000-entry log object:\n");
  Demo("ethernet-10Mb", LinkProfile::Ethernet10());
  Demo("cslip-14.4Kb", LinkProfile::Cslip144());

  std::printf("\nShipping a new RDO method to the server at run time:\n");
  Testbed bed;
  bed.server()->rover()->CreateObject(MakeRdo("logs/router", "lww", kLogCode,
                                              BuildLog(2000)));
  RoverClientNode* laptop = bed.AddClient("laptop", LinkProfile::Cslip24());

  // Instead of importing ~2000 entries over 2.4 Kbit/s, invoke remotely:
  // only the method name + answer cross the link. This is function
  // shipping in the client->server direction.
  InvokeOptions remote;
  remote.force_site = ExecutionSite::kServer;
  const TimePoint t0 = bed.loop()->now();
  auto q = laptop->access()->Invoke("logs/router", "count-matches", {"ERROR*"}, remote);
  q.Wait(bed.loop());
  std::printf("  remote count-matches over 2.4Kb/s: %.2fs -> %s errors "
              "(vs minutes to import)\n",
              (bed.loop()->now() - t0).seconds(), q.value().value.c_str());
  return 0;
}
