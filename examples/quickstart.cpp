// Quickstart: the Rover toolkit in one file.
//
// Builds a simulated deployment (one home server, one mobile client on a
// WaveLAN link that drops out), creates an RDO, and walks through the
// toolkit's four core operations -- import, invoke (local and remote),
// export -- plus queued operation across a disconnection.
//
//   $ ./quickstart

#include <cstdio>

#include "src/core/toolkit.h"

using namespace rover;

int main() {
  // --- 1. A simulated world: server + mobile client ---------------------
  Testbed bed;
  // Connected for the first 30 simulated seconds, offline for 120s, then
  // back (think: leaving the office with a laptop and docking later).
  auto schedule = std::make_unique<IntervalConnectivity>(
      std::vector<IntervalConnectivity::Interval>{
          {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(30)},
          {TimePoint::Epoch() + Duration::Seconds(150),
           TimePoint::Epoch() + Duration::Seconds(100000)}});
  RoverClientNode* laptop =
      bed.AddClient("laptop", LinkProfile::WaveLan2(), std::move(schedule));

  // --- 2. An RDO: code + data that can relocate --------------------------
  // A tiny shared shopping list. Its methods are TcLite procs; its state
  // is a Tcl list; its type "set" selects the server's merge resolver.
  const char* kListCode = R"(
    proc items {} { global state; return $state }
    proc add {item} { global state; lappend state $item; return $state }
    proc size {} { global state; return [llength $state] }
  )";
  RdoDescriptor rdo = MakeRdo("demo/shopping", "set", kListCode, "milk");
  if (!bed.server()->rover()->CreateObject(rdo).ok()) {
    return 1;
  }

  // User notification: watch the operation queue.
  laptop->access()->SetStatusCallback([&](const QueueStatus& s) {
    std::printf("  [status t=%8.1fs] %s\n", bed.loop()->now().seconds(),
                FormatQueueStatus(s).c_str());
  });

  // --- 3. Import: fetch the object into the client cache ----------------
  std::printf("== import while connected ==\n");
  auto import = laptop->access()->Import("demo/shopping");
  import.Wait(bed.loop());
  std::printf("  imported version %llu in %.1f ms\n",
              (unsigned long long)import.value().version,
              import.value().completed_at.seconds() * 1000);

  // --- 4. Invoke: runs locally on the cached RDO ------------------------
  auto invoke = laptop->access()->Invoke("demo/shopping", "add", {"bread"});
  invoke.Wait(bed.loop());
  std::printf("== local invoke: add bread -> {%s} (site=%s)\n",
              invoke.value().value.c_str(), ExecutionSiteName(invoke.value().site));

  // --- 5. Disconnect, keep working, queue an export ----------------------
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(60));
  std::printf("== now disconnected (t=%.0fs) ==\n", bed.loop()->now().seconds());
  laptop->access()->Invoke("demo/shopping", "add", {"coffee"}).Wait(bed.loop());
  std::printf("  local list: %s (tentative=%d)\n",
              laptop->access()->ReadData("demo/shopping")->c_str(),
              laptop->access()->IsTentative("demo/shopping"));

  auto exported = laptop->access()->Export("demo/shopping");
  std::printf("  export queued; promise pending=%d\n", !exported.ready());

  // --- 6. Reconnect: the queue drains, the update commits ----------------
  bed.Run();
  std::printf("== reconnected; export resolved ==\n");
  std::printf("  export status: %s, new version %llu, resolved-conflict=%d\n",
              exported.value().status.ToString().c_str(),
              (unsigned long long)exported.value().new_version,
              exported.value().server_resolved);
  std::printf("  server now has: %s\n",
              bed.server()->store()->Get("demo/shopping")->data.c_str());
  std::printf("done.\n");
  return 0;
}
